//! The black-box command-line interface, as a library so the argument
//! parsing and command execution are unit-testable.
//!
//! Subcommands mirror the original tool's workflow:
//!
//! * `simulate <model_dir>` — read a BioSimWare model directory (with
//!   optional `t_vector`, `c_matrix`, `MX_0` batch files), run it on a
//!   chosen engine, write one dynamics file per simulation plus a timing
//!   summary;
//! * `convert` — BioSimWare directory ↔ SBML document;
//! * `generate` — emit an SBGen-style synthetic model;
//! * `recommend` — print the published engine recommendation for a
//!   (species, reactions, simulations) triple.

use paraspace_analysis::campaign::{
    f64s_digest, model_digest, options_digest, run_journaled, CampaignError, Checkpoint,
};
use paraspace_analysis::dispatch::{
    coordinate, pack_shards, uniform_shards, worker_loop, DispatchConfig, TickDirective,
    WorkerChaos,
};
use paraspace_analysis::ensemble::run_ensemble_durable;
use paraspace_analysis::fitness::FailedMemberPolicy;
use paraspace_analysis::gradient::GradientConfig;
use paraspace_analysis::pe::{estimate_durable_with, estimate_with, EstimationProblem, Optimizer};
use paraspace_analysis::pso::PsoConfig;
pub use paraspace_core::CancelToken;
use paraspace_core::{
    recommend_engine, taxonomy, CoarseEngine, CpuEngine, CpuSolverKind, FineCoarseEngine,
    FineEngine, RecoveryPolicy, SimOutcome, SimulationJob, Simulator,
};
use paraspace_journal::codec::{Dec, Enc};
use paraspace_journal::lease::{LeaseConfig, RetryState};
use paraspace_journal::{CampaignManifest, Journal, JournalError, MANIFEST_FILE};
use paraspace_rbm::{biosimware, sbgen::SbGen, sbml, Parameterization};
use paraspace_solvers::{Solution, SolverOptions};
use paraspace_stochastic::{
    DirectMethod, EnsembleStats, StochasticBatch, StochasticError, StochasticSimulator,
    StochasticTrajectory, TauLeaping,
};
use paraspace_transport::client::{ClientOptions, WorkerClient};
use paraspace_transport::server::{CoordinatorServer, ServerConfig};
use paraspace_transport::{TransportError, WorkerError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::fmt;
use std::path::{Path, PathBuf};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a model directory on an engine.
    Simulate {
        /// BioSimWare model directory.
        model_dir: PathBuf,
        /// Engine name (`fine-coarse`, `coarse`, `fine`, `lsoda`, `vode`).
        engine: String,
        /// Output directory for dynamics files (default: `<model_dir>/out`).
        out_dir: Option<PathBuf>,
        /// Batch replication when no `c_matrix`/`MX_0` is present.
        batch: usize,
        /// Relative tolerance.
        rtol: f64,
        /// Absolute tolerance.
        atol: f64,
        /// Host worker threads (1 = sequential, 0 = all cores).
        threads: usize,
        /// Lockstep lane width: `None` autotunes per model, `Some(n)` pins
        /// it (`1` forces the scalar path). Results are bitwise identical
        /// at any setting.
        lane_width: Option<usize>,
        /// Tolerance-relaxation retries for members that fail (0 = off).
        max_retries: usize,
        /// Per-member attempted-step budget (deterministic deadline).
        member_budget: Option<usize>,
        /// Checkpoint directory for durable (killable/resumable) execution.
        checkpoint_dir: Option<PathBuf>,
        /// Members per journaled shard on the durable path.
        shard_size: usize,
        /// Worker processes on the durable path (0 = run shards in this
        /// process; N spawns N `worker` child processes and coordinates
        /// them — requires `--checkpoint-dir`).
        workers: usize,
        /// Cost-model shard packing (stiff members into small shards,
        /// non-stiff into full shards). `None` = auto: packed when
        /// `workers > 1`, uniform otherwise. Pinned in the manifest as
        /// `shard_plan` — the plan defines which member lands in which
        /// shard, so it is world-defining.
        pack: Option<bool>,
        /// Lease heartbeat TTL in milliseconds (journaled in the
        /// manifest; `resume` refuses a mismatch).
        lease_ttl: u64,
        /// Reassignment retry-backoff base in milliseconds (journaled in
        /// the manifest; `resume` refuses a mismatch).
        retry_base: u64,
        /// Serve the lease lifecycle to networked workers on this address
        /// (e.g. `127.0.0.1:0`); spawned children connect over TCP
        /// instead of sharing the checkpoint directory.
        listen: Option<String>,
    },
    /// Run a stochastic replicate ensemble of a model directory.
    Ensemble {
        /// BioSimWare model directory.
        model_dir: PathBuf,
        /// Simulator name (`tau-leaping`, `ssa`).
        simulator: String,
        /// Output directory (default: `<model_dir>/ensemble`).
        out_dir: Option<PathBuf>,
        /// Replicate count.
        replicates: usize,
        /// Campaign seed keying the counter-based replicate streams.
        seed: u64,
        /// Campaign member index keying the replicate streams.
        member: u64,
        /// Host worker threads (1 = sequential, 0 = all cores).
        threads: usize,
        /// Lockstep lane width for tau-leaping: `None` autotunes per
        /// model, `Some(n)` pins it (`1` forces the scalar path).
        /// Replicate trajectories are bitwise identical at any setting.
        lane_width: Option<usize>,
        /// Checkpoint directory for durable (killable/resumable) runs.
        checkpoint_dir: Option<PathBuf>,
        /// Replicates per journaled shard on the durable path.
        shard_size: usize,
    },
    /// Resume an interrupted durable `simulate` or `ensemble` from its
    /// checkpoint.
    Resume {
        /// The `--checkpoint-dir` of the interrupted run.
        checkpoint_dir: PathBuf,
        /// Worker processes for the resumed run (simulate campaigns only;
        /// 0 = single-process). Worker count is not world-defining, so a
        /// run may be resumed with any value.
        workers: usize,
    },
    /// Attach to a shared checkpoint directory as one worker of a
    /// multi-process `simulate` campaign: claim shard leases, execute them
    /// through the engine pinned in the manifest, and append results to a
    /// private journal segment for the coordinator to merge.
    Worker {
        /// The shared checkpoint directory of the campaign (filesystem
        /// transport; omitted when `--connect` attaches over TCP).
        checkpoint_dir: Option<PathBuf>,
        /// Coordinator address to attach to over TCP (`HOST:PORT`). The
        /// model directory named in the campaign manifest must be
        /// readable at the same path on this machine.
        connect: Option<String>,
        /// Worker id (unique per incarnation; default embeds the pid).
        worker_id: Option<String>,
        /// Chaos: die (no cleanup, lease left behind) while holding the
        /// Nth claimed shard.
        chaos_kill_at: Option<u64>,
        /// Chaos: when the kill fires, first write a torn record to the
        /// segment (crash mid-append).
        chaos_torn_write: bool,
        /// Chaos: stop heartbeating from the Nth claimed shard onward.
        chaos_suppress_at: Option<u64>,
    },
    /// Run the coordinator for a `simulate` campaign checkpoint: merge
    /// worker segments into the shard journal, expire dead workers'
    /// leases, quarantine poisoned shards, and materialize the output
    /// artifacts once every shard commits. Workers attach separately with
    /// `worker`, or are spawned here with `--workers`.
    Coordinate {
        /// The shared checkpoint directory of the campaign.
        checkpoint_dir: PathBuf,
        /// Worker child processes to spawn (0 = attach-only).
        workers: usize,
        /// Serve the lease lifecycle to networked workers on this address
        /// (e.g. `0.0.0.0:7700`); remote machines attach with
        /// `worker --connect HOST:PORT`.
        listen: Option<String>,
    },
    /// Calibrate unknown rate constants against target dynamics.
    Pe {
        /// BioSimWare model directory.
        model_dir: PathBuf,
        /// Search strategy (`pso`, `lbfgs`, `hybrid`).
        optimizer: String,
        /// Engine for swarm stages (`fine-coarse`, `coarse`, `fine`,
        /// `lsoda`, `vode`). Gradient stages run the host sensitivity
        /// integrators directly and ignore this.
        engine: String,
        /// Reaction indices of the unknown constants (`None` = all).
        unknown: Option<Vec<usize>>,
        /// log₁₀ search half-width around each unknown's current value.
        log_radius: f64,
        /// Species names scored against the target (`None` = all).
        observed: Option<Vec<String>>,
        /// Target dynamics file (tab-separated `t  x0  x1 ...`, one row per
        /// sample — the `simulate` output format). `None` simulates the
        /// model's current constants as a self-calibration benchmark.
        target: Option<PathBuf>,
        /// Relative tolerance for candidate evaluation.
        rtol: f64,
        /// Absolute tolerance for candidate evaluation.
        atol: f64,
        /// Host worker threads for swarm stages (1 = sequential, 0 = all
        /// cores). Results are bitwise identical at any thread count.
        threads: usize,
        /// Swarm generations (pso and the hybrid's global stage).
        iterations: usize,
        /// Swarm size (`None` = the published heuristic).
        swarm: Option<usize>,
        /// L-BFGS iterations per start (lbfgs and the hybrid's polish).
        grad_iterations: usize,
        /// Independent L-BFGS starts (ignored by the hybrid's polish,
        /// which starts from the swarm's best).
        starts: usize,
        /// Search seed (swarm RNG and sampled gradient starts).
        seed: u64,
        /// Output directory for the estimate (default: `<model_dir>/pe`).
        out_dir: Option<PathBuf>,
        /// Checkpoint directory for durable (killable/resumable) runs.
        checkpoint_dir: Option<PathBuf>,
    },
    /// Convert between formats.
    Convert {
        /// Source (directory or `.xml` file — detected by suffix).
        from: PathBuf,
        /// Destination (the other format).
        to: PathBuf,
    },
    /// Generate a synthetic model directory.
    Generate {
        /// Species count.
        species: usize,
        /// Reaction count.
        reactions: usize,
        /// RNG seed.
        seed: u64,
        /// Output model directory.
        out_dir: PathBuf,
    },
    /// Print the recommended engine for a workload.
    Recommend {
        /// Species count.
        species: usize,
        /// Reaction count.
        reactions: usize,
        /// Parallel simulations.
        sims: usize,
    },
    /// Print usage.
    Help,
}

/// A CLI-level error with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<paraspace_rbm::RbmError> for CliError {
    fn from(e: paraspace_rbm::RbmError) -> Self {
        CliError(e.to_string())
    }
}

impl From<paraspace_core::SimError> for CliError {
    fn from(e: paraspace_core::SimError) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<JournalError> for CliError {
    fn from(e: JournalError) -> Self {
        CliError(e.to_string())
    }
}

impl From<StochasticError> for CliError {
    fn from(e: StochasticError) -> Self {
        CliError(e.to_string())
    }
}

impl From<CampaignError> for CliError {
    fn from(e: CampaignError) -> Self {
        CliError(e.to_string())
    }
}

/// The usage text.
pub const USAGE: &str = "\
paraspace-cli — accelerated analysis of biological parameter spaces

USAGE:
  paraspace-cli simulate <model_dir> [--engine NAME] [--out DIR] [--batch N]
                           [--rtol X] [--atol X] [--threads N]
                           [--lane-width auto|N]
                           [--max-retries N] [--member-budget STEPS]
                           [--checkpoint-dir DIR] [--shard-size N]
                           [--workers N] [--listen ADDR]
                           [--pack-shards|--no-pack-shards]
                           [--lease-ttl MS] [--retry-base MS]
  paraspace-cli ensemble <model_dir> [--simulator NAME] [--replicates N]
                           [--seed S] [--member M] [--threads N]
                           [--lane-width auto|N] [--out DIR]
                           [--checkpoint-dir DIR] [--shard-size N]
  paraspace-cli pe <model_dir> [--optimizer pso|lbfgs|hybrid] [--engine NAME]
                           [--unknown I,J,...] [--log-radius R]
                           [--observed NAME,NAME,...] [--target FILE]
                           [--rtol X] [--atol X] [--threads N]
                           [--iterations N] [--swarm N]
                           [--grad-iterations N] [--starts N] [--seed S]
                           [--out DIR] [--checkpoint-dir DIR]
  paraspace-cli resume <checkpoint_dir> [--workers N]
  paraspace-cli worker <checkpoint_dir> [--worker-id ID]
  paraspace-cli worker --connect HOST:PORT [--worker-id ID]
  paraspace-cli coordinate <checkpoint_dir> [--workers N] [--listen ADDR]
  paraspace-cli convert <from> <to>          (BioSimWare dir ↔ .xml)
  paraspace-cli generate --species N --reactions M [--seed S] <out_dir>
  paraspace-cli recommend --species N --reactions M --sims S
  paraspace-cli help

ENGINES: fine-coarse (default) | coarse | fine | lsoda | vode

--threads runs the batch numerics on N host workers (default 1; 0 = one per
core). Results are bitwise identical at any thread count.

--lane-width controls the lockstep lane grouping of the fine and fine-coarse
engines: `auto` (default) prices each model's flux-vs-LU cost ratio and
factor working set to pick a width per model, while an explicit N pins it
(1 forces the scalar path). Other engines ignore the flag. Results are
bitwise identical at any width.

Failed members never abort a batch: each failure is contained, itemized in
the health summary, and written as a .err file (with the member's full
recovery log and failure taxonomy). --max-retries N re-runs a failed member
up to N times with 10x-relaxed tolerances (default 0 = off);
--member-budget caps the attempted integration steps any one member may
spend across all retries, so a pathological member cannot stall the batch.

`ensemble` runs --replicates stochastic realizations (default 100) of the
model. SIMULATORS: tau-leaping (default, lockstep lane groups on
mass-action models) | ssa (exact direct method, scalar). Every replicate
draws from a counter-based RNG stream keyed by (--seed, --member,
replicate index), so trajectories are bitwise identical at any lane width,
thread count, or shard decomposition; per-replicate trajectories, failed
replicates (.err), and ensemble mean/variance are written to --out.
NOTE: seeds that predate the counter-based streams reproduce different
ensembles (the old layout seeded replicate i with seed+i).

--checkpoint-dir makes the run durable: the batch decomposes into numbered
shards (--shard-size members each, default 64), every completed shard is
committed to a write-ahead journal in DIR, Ctrl-C drains in-flight work and
checkpoints, and `paraspace-cli resume DIR` continues from the last
committed shard. Output files are written only once all shards commit and
are byte-identical to an uninterrupted run. Resume refuses a checkpoint
whose model, tolerances, engine, thread, or lane-width configuration
changed.

--workers N turns a durable `simulate` into a fault-tolerant multi-process
run: the parent becomes the coordinator and spawns N `worker` processes
that claim shard leases against the shared checkpoint directory. A worker
that is SIGKILLed, hangs, or stalls misses its heartbeat deadline; its
shard is reassigned after a capped exponential backoff, and a shard that
kills several distinct workers is quarantined (journaled as a poisoned
outcome with its failure taxonomy; the campaign completes degraded).
Workers may also be attached by hand (`paraspace-cli worker DIR`, e.g.
from other terminals) against a `coordinate DIR` process. Artifacts are
byte-identical to a single-process run at any worker count, crash
pattern, or reassignment order. Worker count is not world-defining:
resume with any --workers value.

--listen ADDR serves the same lease lifecycle over TCP: spawned children
connect to the bound port instead of sharing the checkpoint directory,
and remote machines attach with `paraspace-cli worker --connect
HOST:PORT` (the model directory named in the manifest must be readable
at the same path there). Transport is at-least-once with
timeout/retry/backoff on every RPC; the merge stays exactly-once by
determinism, so artifacts remain byte-identical under drops, duplicates,
reconnects, and partitions. A partitioned worker keeps computing its
claimed shard and replays unacknowledged records on reconnect; a worker
silent past the TTL is presumed dead and its shard reassigned.

`pe` calibrates unknown rate constants (--unknown reaction indices,
default all; searched within --log-radius decades of their current
values, default 1.5) against target dynamics: --target FILE in the
`simulate` output format, or — with no --target — a self-calibration
benchmark against the model's own constants. OPTIMIZERS: pso (the
published derivative-free FST-PSO, one ODE solve per particle per
generation) | lbfgs (multi-start projected L-BFGS on exact
forward-sensitivity gradients — typically orders of magnitude fewer
solves) | hybrid (default: a short swarm finds the basin, L-BFGS
polishes). With --checkpoint-dir the search is durable: every swarm
generation / gradient evaluation is journaled, `resume DIR` continues
mid-search bitwise, and resuming under a different optimizer or search
configuration is refused (same contract as --lane-width).

--pack-shards packs stiff members into small shards and non-stiff
members into full --shard-size shards (cost-model load balancing);
--no-pack-shards forces uniform ascending chunks. Default: packed when
--workers > 1, uniform otherwise. The plan is pinned in the manifest, so
a resume keeps the original packing whatever its own flags.

--lease-ttl MS (default 2000) and --retry-base MS (default 100) set the
heartbeat deadline and the reassignment backoff base. Both are journaled
in the manifest: a resume with different timing is refused, because a
shorter TTL would turn the previous incarnation's live workers into
false expiries.";

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    name: &str,
) -> Result<T, CliError> {
    *i += 1;
    let v = args.get(*i).ok_or_else(|| CliError(format!("{name} needs a value")))?;
    v.parse().map_err(|_| CliError(format!("invalid value for {name}: {v:?}")))
}

/// Parses a comma-separated index list (`0,3,5`) for flags that select
/// reactions by position.
fn parse_index_list(v: &str, name: &str) -> Result<Vec<usize>, CliError> {
    v.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| CliError(format!("invalid value for {name}: {v:?}")))
        })
        .collect()
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a user-facing message for unknown commands, missing operands, or
/// malformed flag values.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let cmd = match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    match cmd {
        "simulate" => {
            let mut model_dir = None;
            let mut engine = "fine-coarse".to_string();
            let mut out_dir = None;
            let mut batch = 1usize;
            let mut rtol = 1e-6;
            let mut atol = 1e-12;
            let mut threads = 1usize;
            let mut lane_width = None;
            let mut max_retries = 0usize;
            let mut member_budget = None;
            let mut checkpoint_dir = None;
            let mut shard_size = DEFAULT_SHARD_SIZE;
            let mut workers = 0usize;
            let mut pack = None;
            let mut lease_ttl = DEFAULT_LEASE_TTL_MS;
            let mut retry_base = DEFAULT_RETRY_BASE_MS;
            let mut listen = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--engine" => engine = parse_flag(args, &mut i, "--engine")?,
                    "--out" => {
                        out_dir = Some(PathBuf::from(
                            args.get(i + 1)
                                .cloned()
                                .ok_or_else(|| CliError("--out needs a value".into()))?,
                        ))
                        .inspect(|_| i += 1)
                    }
                    "--batch" => batch = parse_flag(args, &mut i, "--batch")?,
                    "--rtol" => rtol = parse_flag(args, &mut i, "--rtol")?,
                    "--atol" => atol = parse_flag(args, &mut i, "--atol")?,
                    "--threads" => threads = parse_flag(args, &mut i, "--threads")?,
                    "--lane-width" => {
                        i += 1;
                        let v = args
                            .get(i)
                            .ok_or_else(|| CliError("--lane-width needs a value".into()))?;
                        lane_width = match v.as_str() {
                            "auto" => None,
                            v => Some(v.parse::<usize>().ok().filter(|w| *w >= 1).ok_or_else(
                                || {
                                    CliError(format!(
                                        "invalid value for --lane-width: {v:?} \
                                         (expected `auto` or a width >= 1)"
                                    ))
                                },
                            )?),
                        };
                    }
                    "--max-retries" => max_retries = parse_flag(args, &mut i, "--max-retries")?,
                    "--member-budget" => {
                        member_budget = Some(parse_flag(args, &mut i, "--member-budget")?)
                    }
                    "--checkpoint-dir" => {
                        checkpoint_dir =
                            Some(PathBuf::from(args.get(i + 1).cloned().ok_or_else(|| {
                                CliError("--checkpoint-dir needs a value".into())
                            })?))
                            .inspect(|_| i += 1)
                    }
                    "--shard-size" => shard_size = parse_flag(args, &mut i, "--shard-size")?,
                    "--workers" => workers = parse_flag(args, &mut i, "--workers")?,
                    "--pack-shards" => pack = Some(true),
                    "--no-pack-shards" => pack = Some(false),
                    "--lease-ttl" => lease_ttl = parse_flag(args, &mut i, "--lease-ttl")?,
                    "--retry-base" => retry_base = parse_flag(args, &mut i, "--retry-base")?,
                    "--listen" => listen = Some(parse_flag(args, &mut i, "--listen")?),
                    other if !other.starts_with("--") && model_dir.is_none() => {
                        model_dir = Some(PathBuf::from(other));
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            if workers > 0 && checkpoint_dir.is_none() {
                return Err(CliError("--workers needs --checkpoint-dir".into()));
            }
            if listen.is_some() && checkpoint_dir.is_none() {
                return Err(CliError("--listen needs --checkpoint-dir".into()));
            }
            if lease_ttl == 0 || retry_base == 0 {
                return Err(CliError("--lease-ttl and --retry-base must be positive".into()));
            }
            Ok(Command::Simulate {
                model_dir: model_dir
                    .ok_or_else(|| CliError("simulate needs a model directory".into()))?,
                engine,
                out_dir,
                batch,
                rtol,
                atol,
                threads,
                lane_width,
                max_retries,
                member_budget,
                checkpoint_dir,
                shard_size,
                workers,
                pack,
                lease_ttl,
                retry_base,
                listen,
            })
        }
        "ensemble" => {
            let mut model_dir = None;
            let mut simulator = "tau-leaping".to_string();
            let mut out_dir = None;
            let mut replicates = 100usize;
            let mut seed = 0u64;
            let mut member = 0u64;
            let mut threads = 1usize;
            let mut lane_width = None;
            let mut checkpoint_dir = None;
            let mut shard_size = DEFAULT_SHARD_SIZE;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--simulator" => simulator = parse_flag(args, &mut i, "--simulator")?,
                    "--out" => {
                        out_dir = Some(PathBuf::from(
                            args.get(i + 1)
                                .cloned()
                                .ok_or_else(|| CliError("--out needs a value".into()))?,
                        ))
                        .inspect(|_| i += 1)
                    }
                    "--replicates" => replicates = parse_flag(args, &mut i, "--replicates")?,
                    "--seed" => seed = parse_flag(args, &mut i, "--seed")?,
                    "--member" => member = parse_flag(args, &mut i, "--member")?,
                    "--threads" => threads = parse_flag(args, &mut i, "--threads")?,
                    "--lane-width" => {
                        i += 1;
                        let v = args
                            .get(i)
                            .ok_or_else(|| CliError("--lane-width needs a value".into()))?;
                        lane_width = match v.as_str() {
                            "auto" => None,
                            v => Some(v.parse::<usize>().ok().filter(|w| *w >= 1).ok_or_else(
                                || {
                                    CliError(format!(
                                        "invalid value for --lane-width: {v:?} \
                                         (expected `auto` or a width >= 1)"
                                    ))
                                },
                            )?),
                        };
                    }
                    "--checkpoint-dir" => {
                        checkpoint_dir =
                            Some(PathBuf::from(args.get(i + 1).cloned().ok_or_else(|| {
                                CliError("--checkpoint-dir needs a value".into())
                            })?))
                            .inspect(|_| i += 1)
                    }
                    "--shard-size" => shard_size = parse_flag(args, &mut i, "--shard-size")?,
                    other if !other.starts_with("--") && model_dir.is_none() => {
                        model_dir = Some(PathBuf::from(other));
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            Ok(Command::Ensemble {
                model_dir: model_dir
                    .ok_or_else(|| CliError("ensemble needs a model directory".into()))?,
                simulator,
                out_dir,
                replicates,
                seed,
                member,
                threads,
                lane_width,
                checkpoint_dir,
                shard_size,
            })
        }
        "pe" => {
            let mut model_dir = None;
            let mut optimizer = "hybrid".to_string();
            let mut engine = "lsoda".to_string();
            let mut unknown = None;
            let mut log_radius = 1.5f64;
            let mut observed = None;
            let mut target = None;
            let mut rtol = 1e-6;
            let mut atol = 1e-12;
            let mut threads = 1usize;
            let mut iterations = 40usize;
            let mut swarm = None;
            let mut grad_iterations = 60usize;
            let mut starts = 3usize;
            let mut seed = 42u64;
            let mut out_dir = None;
            let mut checkpoint_dir = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--optimizer" => optimizer = parse_flag(args, &mut i, "--optimizer")?,
                    "--engine" => engine = parse_flag(args, &mut i, "--engine")?,
                    "--unknown" => {
                        i += 1;
                        let v = args
                            .get(i)
                            .ok_or_else(|| CliError("--unknown needs a value".into()))?;
                        unknown = Some(parse_index_list(v, "--unknown")?);
                    }
                    "--log-radius" => log_radius = parse_flag(args, &mut i, "--log-radius")?,
                    "--observed" => {
                        i += 1;
                        let v = args
                            .get(i)
                            .ok_or_else(|| CliError("--observed needs a value".into()))?;
                        observed =
                            Some(v.split(',').map(|s| s.trim().to_string()).collect::<Vec<_>>());
                    }
                    "--target" => {
                        target = Some(PathBuf::from(
                            args.get(i + 1)
                                .cloned()
                                .ok_or_else(|| CliError("--target needs a value".into()))?,
                        ))
                        .inspect(|_| i += 1)
                    }
                    "--rtol" => rtol = parse_flag(args, &mut i, "--rtol")?,
                    "--atol" => atol = parse_flag(args, &mut i, "--atol")?,
                    "--threads" => threads = parse_flag(args, &mut i, "--threads")?,
                    "--iterations" => iterations = parse_flag(args, &mut i, "--iterations")?,
                    "--swarm" => swarm = Some(parse_flag(args, &mut i, "--swarm")?),
                    "--grad-iterations" => {
                        grad_iterations = parse_flag(args, &mut i, "--grad-iterations")?
                    }
                    "--starts" => starts = parse_flag(args, &mut i, "--starts")?,
                    "--seed" => seed = parse_flag(args, &mut i, "--seed")?,
                    "--out" => {
                        out_dir = Some(PathBuf::from(
                            args.get(i + 1)
                                .cloned()
                                .ok_or_else(|| CliError("--out needs a value".into()))?,
                        ))
                        .inspect(|_| i += 1)
                    }
                    "--checkpoint-dir" => {
                        checkpoint_dir =
                            Some(PathBuf::from(args.get(i + 1).cloned().ok_or_else(|| {
                                CliError("--checkpoint-dir needs a value".into())
                            })?))
                            .inspect(|_| i += 1)
                    }
                    other if !other.starts_with("--") && model_dir.is_none() => {
                        model_dir = Some(PathBuf::from(other));
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            if !matches!(optimizer.as_str(), "pso" | "lbfgs" | "hybrid") {
                return Err(CliError(format!(
                    "unknown optimizer {optimizer:?} (expected `pso`, `lbfgs`, or `hybrid`)"
                )));
            }
            if !(log_radius.is_finite() && log_radius > 0.0) {
                return Err(CliError("--log-radius must be a positive number".into()));
            }
            if starts == 0 {
                return Err(CliError("--starts must be at least 1".into()));
            }
            Ok(Command::Pe {
                model_dir: model_dir.ok_or_else(|| CliError("pe needs a model directory".into()))?,
                optimizer,
                engine,
                unknown,
                log_radius,
                observed,
                target,
                rtol,
                atol,
                threads,
                iterations,
                swarm,
                grad_iterations,
                starts,
                seed,
                out_dir,
                checkpoint_dir,
            })
        }
        "resume" => {
            let mut checkpoint_dir = None;
            let mut workers = 0usize;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--workers" => workers = parse_flag(args, &mut i, "--workers")?,
                    other if !other.starts_with("--") && checkpoint_dir.is_none() => {
                        checkpoint_dir = Some(PathBuf::from(other));
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            Ok(Command::Resume {
                checkpoint_dir: checkpoint_dir
                    .ok_or_else(|| CliError("resume needs a checkpoint directory".into()))?,
                workers,
            })
        }
        "worker" => {
            let mut checkpoint_dir = None;
            let mut connect = None;
            let mut worker_id = None;
            let mut chaos_kill_at = None;
            let mut chaos_torn_write = false;
            let mut chaos_suppress_at = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--connect" => connect = Some(parse_flag(args, &mut i, "--connect")?),
                    "--worker-id" => worker_id = Some(parse_flag(args, &mut i, "--worker-id")?),
                    "--chaos-kill-at" => {
                        chaos_kill_at = Some(parse_flag(args, &mut i, "--chaos-kill-at")?)
                    }
                    "--chaos-torn-write" => chaos_torn_write = true,
                    "--chaos-suppress-at" => {
                        chaos_suppress_at = Some(parse_flag(args, &mut i, "--chaos-suppress-at")?)
                    }
                    other if !other.starts_with("--") && checkpoint_dir.is_none() => {
                        checkpoint_dir = Some(PathBuf::from(other));
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            if checkpoint_dir.is_none() && connect.is_none() {
                return Err(CliError(
                    "worker needs a checkpoint directory or --connect HOST:PORT".into(),
                ));
            }
            if checkpoint_dir.is_some() && connect.is_some() {
                return Err(CliError(
                    "worker takes either a checkpoint directory or --connect, not both".into(),
                ));
            }
            Ok(Command::Worker {
                checkpoint_dir,
                connect,
                worker_id,
                chaos_kill_at,
                chaos_torn_write,
                chaos_suppress_at,
            })
        }
        "coordinate" => {
            let mut checkpoint_dir = None;
            let mut workers = 0usize;
            let mut listen = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--workers" => workers = parse_flag(args, &mut i, "--workers")?,
                    "--listen" => listen = Some(parse_flag(args, &mut i, "--listen")?),
                    other if !other.starts_with("--") && checkpoint_dir.is_none() => {
                        checkpoint_dir = Some(PathBuf::from(other));
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            Ok(Command::Coordinate {
                checkpoint_dir: checkpoint_dir
                    .ok_or_else(|| CliError("coordinate needs a checkpoint directory".into()))?,
                workers,
                listen,
            })
        }
        "convert" => {
            if args.len() != 3 {
                return Err(CliError("convert needs exactly <from> and <to>".into()));
            }
            Ok(Command::Convert { from: PathBuf::from(&args[1]), to: PathBuf::from(&args[2]) })
        }
        "generate" => {
            let mut species = None;
            let mut reactions = None;
            let mut seed = 42u64;
            let mut out_dir = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--species" => species = Some(parse_flag(args, &mut i, "--species")?),
                    "--reactions" => reactions = Some(parse_flag(args, &mut i, "--reactions")?),
                    "--seed" => seed = parse_flag(args, &mut i, "--seed")?,
                    other if !other.starts_with("--") && out_dir.is_none() => {
                        out_dir = Some(PathBuf::from(other));
                    }
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            Ok(Command::Generate {
                species: species.ok_or_else(|| CliError("generate needs --species".into()))?,
                reactions: reactions
                    .ok_or_else(|| CliError("generate needs --reactions".into()))?,
                seed,
                out_dir: out_dir
                    .ok_or_else(|| CliError("generate needs an output directory".into()))?,
            })
        }
        "recommend" => {
            let mut species = None;
            let mut reactions = None;
            let mut sims = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--species" => species = Some(parse_flag(args, &mut i, "--species")?),
                    "--reactions" => reactions = Some(parse_flag(args, &mut i, "--reactions")?),
                    "--sims" => sims = Some(parse_flag(args, &mut i, "--sims")?),
                    other => return Err(CliError(format!("unexpected argument {other:?}"))),
                }
                i += 1;
            }
            Ok(Command::Recommend {
                species: species.ok_or_else(|| CliError("recommend needs --species".into()))?,
                reactions: reactions
                    .ok_or_else(|| CliError("recommend needs --reactions".into()))?,
                sims: sims.ok_or_else(|| CliError("recommend needs --sims".into()))?,
            })
        }
        other => Err(CliError(format!("unknown command {other:?} (try `paraspace help`)"))),
    }
}

/// Members per journaled shard unless `--shard-size` overrides it.
pub const DEFAULT_SHARD_SIZE: usize = 64;

/// Lease heartbeat TTL unless `--lease-ttl` overrides it.
pub const DEFAULT_LEASE_TTL_MS: u64 = 2000;

/// Reassignment retry-backoff base unless `--retry-base` overrides it.
pub const DEFAULT_RETRY_BASE_MS: u64 = 100;

/// The most worker children one coordinator process tracks for SIGINT
/// reaping. Spawns beyond this still run; they just rely on lease TTL
/// expiry if the coordinator dies (the pre-registry behaviour).
const MAX_REGISTERED_CHILDREN: usize = 64;

/// Pids of live spawned worker children, published for the binary's
/// SIGINT handler: a handler cannot touch `Child` handles, locks, or the
/// allocator, but it can read this array and issue `kill(2)`. Slot value
/// 0 means empty.
static CHILD_PIDS: [std::sync::atomic::AtomicU32; MAX_REGISTERED_CHILDREN] =
    [const { std::sync::atomic::AtomicU32::new(0) }; MAX_REGISTERED_CHILDREN];

fn register_child(pid: u32) {
    use std::sync::atomic::Ordering;
    for slot in &CHILD_PIDS {
        if slot.compare_exchange(0, pid, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
            return;
        }
    }
}

fn unregister_child(pid: u32) {
    use std::sync::atomic::Ordering;
    for slot in &CHILD_PIDS {
        let _ = slot.compare_exchange(pid, 0, Ordering::Relaxed, Ordering::Relaxed);
    }
}

/// SIGKILLs every registered worker child. Async-signal-safe (atomic
/// loads plus the `kill` syscall, no allocation, no locks), so the
/// binary's SIGINT handler calls it directly: a coordinator dying to
/// Ctrl-C or a panic must not leave orphan workers holding leases until
/// the TTL expires them one by one.
pub fn kill_registered_children() {
    #[cfg(unix)]
    {
        use std::sync::atomic::Ordering;
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        const SIGKILL: i32 = 9;
        for slot in &CHILD_PIDS {
            let pid = slot.load(Ordering::Relaxed);
            if pid != 0 {
                unsafe {
                    kill(pid as i32, SIGKILL);
                }
            }
        }
    }
}

/// Spawned worker children, registered for SIGINT reaping on push and
/// killed + reaped on drop — so a coordinator that panics (or returns
/// any error path) never leaves orphans. The success path waits for the
/// children first, making the drop's kill a no-op.
struct Children {
    inner: RefCell<Vec<std::process::Child>>,
}

impl Children {
    fn new() -> Self {
        Children { inner: RefCell::new(Vec::new()) }
    }

    fn push(&self, child: std::process::Child) {
        register_child(child.id());
        self.inner.borrow_mut().push(child);
    }

    /// Drops children that already exited from the registry and the list.
    fn reap_exited(&self) {
        self.inner.borrow_mut().retain_mut(|c| {
            if matches!(c.try_wait(), Ok(Some(_))) {
                unregister_child(c.id());
                false
            } else {
                true
            }
        });
    }

    fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Waits for every child to exit on its own (the success path:
    /// children observe campaign completion through the shard log).
    fn wait_all(&self) {
        for c in self.inner.borrow_mut().iter_mut() {
            let _ = c.wait();
            unregister_child(c.id());
        }
        self.inner.borrow_mut().clear();
    }
}

impl Drop for Children {
    fn drop(&mut self) {
        for c in self.inner.get_mut() {
            unregister_child(c.id());
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn engine_by_name(
    name: &str,
    threads: usize,
    lane_width: Option<usize>,
    recovery: RecoveryPolicy,
    cancel: &CancelToken,
) -> Result<Box<dyn Simulator>, CliError> {
    let cancel = cancel.clone();
    // `--lane-width` only reaches the lockstep engines; the coarse and CPU
    // engines have no lane schedule to pin.
    Ok(match name {
        "fine-coarse" => {
            let mut engine = FineCoarseEngine::new()
                .with_threads(threads)
                .with_recovery(recovery)
                .with_cancel(cancel);
            if let Some(w) = lane_width {
                engine = engine.with_lane_width(w);
            }
            Box::new(engine)
        }
        "coarse" => Box::new(
            CoarseEngine::new().with_threads(threads).with_recovery(recovery).with_cancel(cancel),
        ),
        "fine" => {
            let mut engine =
                FineEngine::new().with_threads(threads).with_recovery(recovery).with_cancel(cancel);
            if let Some(w) = lane_width {
                engine = engine.with_lane_width(w);
            }
            Box::new(engine)
        }
        "lsoda" => Box::new(
            CpuEngine::new(CpuSolverKind::Lsoda)
                .with_threads(threads)
                .with_recovery(recovery)
                .with_cancel(cancel),
        ),
        "vode" => Box::new(
            CpuEngine::new(CpuSolverKind::Vode)
                .with_threads(threads)
                .with_recovery(recovery)
                .with_cancel(cancel),
        ),
        other => return Err(CliError(format!("unknown engine {other:?}"))),
    })
}

/// The enriched `.err` report for a failed member: the error itself plus the
/// full recovery log (attempt ladder, reroutes, tolerance relaxations) and
/// the failure-taxonomy label the batch health summary counts it under.
fn error_report(o: &SimOutcome) -> String {
    let e = o.solution.as_ref().expect_err("error_report is only called for failed members");
    format!(
        "error: {e}\ntaxonomy: {}\nsolver: {}\nattempts: {}\nrelaxations: {}\nrerouted: {}\nrecovered: {}\npanicked: {}\n",
        taxonomy(e),
        o.solver,
        o.log.attempts,
        o.log.relaxations,
        o.log.rerouted,
        o.log.recovered,
        o.log.panicked,
    )
}

/// One member's journaled artifact: the exact bytes its output file will
/// hold (`body`), plus the taxonomy label for failed members (empty for
/// successes) so a resumed run reprints the same failure summary.
struct MemberRecord {
    ok: bool,
    label: String,
    body: String,
}

/// Per-shard journal payload: the member artifacts plus the shard's billed
/// simulated-time split, so replayed shards bill identically.
struct ShardOutcome {
    members: Vec<MemberRecord>,
    total_ns: f64,
    integration_ns: f64,
    io_ns: f64,
}

impl ShardOutcome {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.put_u32(self.members.len() as u32);
        for m in &self.members {
            enc.put_u32(u32::from(m.ok)).put_str(&m.label).put_str(&m.body);
        }
        enc.put_f64(self.total_ns).put_f64(self.integration_ns).put_f64(self.io_ns);
        enc.finish()
    }

    fn decode(bytes: &[u8]) -> Result<Self, JournalError> {
        let mut dec = Dec::new(bytes);
        let n = dec.u32()?;
        let mut members = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let ok = dec.u32()? != 0;
            let label = dec.str()?.to_string();
            let body = dec.str()?.to_string();
            members.push(MemberRecord { ok, label, body });
        }
        let total_ns = dec.f64()?;
        let integration_ns = dec.f64()?;
        let io_ns = dec.f64()?;
        dec.expect_exhausted()?;
        Ok(ShardOutcome { members, total_ns, integration_ns, io_ns })
    }
}

/// Executes a parsed command, writing human-readable progress to `out`.
///
/// Equivalent to [`execute_with_cancel`] with a fresh (never-tripped)
/// cancellation token.
///
/// # Errors
///
/// Any I/O, parse, or engine failure, with a user-facing message.
pub fn execute(cmd: &Command, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    execute_with_cancel(cmd, out, &CancelToken::new())
}

/// Executes a parsed command under a cancellation token (the binary wires
/// SIGINT to it). On the durable path a tripped token drains in-flight
/// work, checkpoints, and returns an "interrupted" error naming the resume
/// command.
///
/// # Errors
///
/// Any I/O, parse, or engine failure, with a user-facing message.
pub fn execute_with_cancel(
    cmd: &Command,
    out: &mut dyn std::io::Write,
    cancel: &CancelToken,
) -> Result<(), CliError> {
    match cmd {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Recommend { species, reactions, sims } => {
            let pick = recommend_engine(*species, *reactions, *sims);
            writeln!(
                out,
                "recommended engine for {species}x{reactions} model, {sims} simulations: {pick}"
            )?;
            Ok(())
        }
        Command::Generate { species, reactions, seed, out_dir } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let model = SbGen::new(*species, *reactions).generate(&mut rng);
            biosimware::write_dir(&model, out_dir)?;
            biosimware::write_time_points(&[1.0, 2.0, 5.0, 10.0], out_dir)?;
            writeln!(
                out,
                "wrote {}x{} model (seed {seed}) to {}",
                model.n_species(),
                model.n_reactions(),
                out_dir.display()
            )?;
            Ok(())
        }
        Command::Convert { from, to } => {
            let from_is_xml = from.extension().is_some_and(|e| e == "xml");
            let to_is_xml = to.extension().is_some_and(|e| e == "xml");
            match (from_is_xml, to_is_xml) {
                (true, false) => {
                    let doc = std::fs::read_to_string(from)?;
                    let model = sbml::from_str(&doc)?;
                    biosimware::write_dir(&model, to)?;
                    writeln!(
                        out,
                        "SBML → BioSimWare: {} species, {} reactions",
                        model.n_species(),
                        model.n_reactions()
                    )?;
                }
                (false, true) => {
                    let model = biosimware::read_dir(from)?;
                    std::fs::write(to, sbml::to_string(&model))?;
                    writeln!(
                        out,
                        "BioSimWare → SBML: {} species, {} reactions",
                        model.n_species(),
                        model.n_reactions()
                    )?;
                }
                _ => return Err(CliError("exactly one side must be an .xml file".into())),
            }
            Ok(())
        }
        Command::Simulate { checkpoint_dir: Some(dir), workers, listen, .. }
            if *workers > 0 || listen.is_some() =>
        {
            simulate_dispatched(cmd, dir, *workers, listen.as_deref(), out, cancel)
        }
        Command::Simulate { checkpoint_dir: Some(dir), .. } => {
            simulate_durable(cmd, dir, out, cancel)
        }
        Command::Worker {
            checkpoint_dir,
            connect,
            worker_id,
            chaos_kill_at,
            chaos_torn_write,
            chaos_suppress_at,
        } => {
            if let Some(addr) = connect {
                return run_net_worker(addr, worker_id.as_deref(), out, cancel);
            }
            let chaos = WorkerChaos {
                kill_at_ordinal: *chaos_kill_at,
                torn_write_on_kill: *chaos_torn_write,
                suppress_heartbeat_at: *chaos_suppress_at,
                ..WorkerChaos::default()
            };
            let dir = checkpoint_dir
                .as_ref()
                .ok_or_else(|| CliError("worker needs a checkpoint directory".into()))?;
            run_worker(dir, worker_id.as_deref(), &chaos, out, cancel)
        }
        Command::Coordinate { checkpoint_dir, workers, listen } => {
            run_coordinator(checkpoint_dir, *workers, listen.as_deref(), out, cancel)
        }
        Command::Simulate {
            model_dir,
            engine,
            out_dir,
            batch,
            rtol,
            atol,
            threads,
            lane_width,
            max_retries,
            member_budget,
            ..
        } => {
            let model = biosimware::read_dir(model_dir)?;
            let time_points = biosimware::read_time_points(model_dir)
                .unwrap_or_else(|_| vec![1.0, 2.0, 5.0, 10.0]);
            let mut parameterizations = biosimware::read_parameterizations(&model, model_dir)?;
            if parameterizations.is_empty() {
                parameterizations = (0..*batch).map(|_| Parameterization::new()).collect();
            }
            let n_sims = parameterizations.len();
            let job = SimulationJob::builder(&model)
                .time_points(time_points)
                .parameterizations(parameterizations)
                .options(SolverOptions {
                    rel_tol: *rtol,
                    abs_tol: *atol,
                    max_steps: 100_000,
                    ..SolverOptions::default()
                })
                .build()?;
            let recovery = RecoveryPolicy {
                max_relaxations: *max_retries,
                step_budget: *member_budget,
                ..RecoveryPolicy::default()
            };
            let engine = engine_by_name(engine, *threads, *lane_width, recovery, cancel)?;
            let result = engine.run(&job)?;

            let out_path = out_dir.clone().unwrap_or_else(|| model_dir.join("out"));
            std::fs::create_dir_all(&out_path)?;
            for (i, o) in result.outcomes.iter().enumerate() {
                match &o.solution {
                    Ok(sol) => {
                        std::fs::write(
                            out_path.join(format!("dynamics_{i:05}.tsv")),
                            job.serialize_dynamics(sol),
                        )?;
                    }
                    Err(_) => {
                        std::fs::write(
                            out_path.join(format!("dynamics_{i:05}.err")),
                            error_report(o),
                        )?;
                    }
                }
            }
            writeln!(
                out,
                "{}: {}/{} simulations ok; simulated {:.3} ms (integration {:.3} ms, i/o {:.3} ms); host wall {:.1?}",
                result.engine,
                result.success_count(),
                n_sims,
                result.timing.simulated_total_ns / 1e6,
                result.timing.simulated_integration_ns / 1e6,
                result.timing.simulated_io_ns / 1e6,
                result.timing.host_wall,
            )?;
            writeln!(out, "health: {}", result.health)?;
            writeln!(out, "dynamics written to {}", out_path.display())?;
            Ok(())
        }
        Command::Ensemble {
            model_dir,
            simulator,
            out_dir,
            replicates,
            seed,
            member,
            threads,
            lane_width,
            checkpoint_dir,
            shard_size,
        } => {
            let cfg = EnsembleConfig {
                model_dir,
                out_dir: out_dir.as_ref(),
                replicates: *replicates,
                seed: *seed,
                member: *member,
                threads: *threads,
                lane_width: *lane_width,
                checkpoint_dir: checkpoint_dir.as_ref(),
                shard_size: *shard_size,
            };
            match simulator.as_str() {
                "tau-leaping" => run_ensemble(TauLeaping::new(), &cfg, out, cancel),
                "ssa" => run_ensemble(DirectMethod::new(), &cfg, out, cancel),
                other => Err(CliError(format!(
                    "unknown simulator {other:?} (expected `tau-leaping` or `ssa`)"
                ))),
            }
        }
        Command::Pe { .. } => run_pe(cmd, out, cancel),
        Command::Resume { checkpoint_dir, workers } => {
            let manifest = CampaignManifest::read(&checkpoint_dir.join(MANIFEST_FILE))?;
            if manifest.kind() == "ensemble" {
                return resume_ensemble(checkpoint_dir, &manifest, out, cancel);
            }
            if manifest.kind() == "cli-pe" {
                return resume_pe(checkpoint_dir, &manifest, out, cancel);
            }
            if manifest.kind() != "cli-simulate" {
                return Err(CliError(format!(
                    "checkpoint at {} is a {:?} campaign, not a CLI simulate, ensemble, or pe run",
                    checkpoint_dir.display(),
                    manifest.kind()
                )));
            }
            let cmd = simulate_cmd_from_manifest(checkpoint_dir, &manifest, *workers)?;
            execute_with_cancel(&cmd, out, cancel)
        }
    }
}

/// Reconstructs the `simulate` command a `cli-simulate` checkpoint was
/// created with, from its manifest fields — the single source of truth
/// shared by `resume`, `worker`, and `coordinate`, so every attached
/// process resolves the exact same world. `workers` is not world-defining
/// and may differ between the original run and any resume.
fn simulate_cmd_from_manifest(
    checkpoint_dir: &Path,
    manifest: &CampaignManifest,
    workers: usize,
) -> Result<Command, CliError> {
    let field = |key: &str| {
        manifest
            .field(key)
            .map(str::to_string)
            .ok_or_else(|| CliError(format!("checkpoint manifest is missing {key:?}")))
    };
    fn parse_field<T: std::str::FromStr>(key: &str, v: String) -> Result<T, CliError> {
        v.parse().map_err(|_| CliError(format!("malformed manifest field {key:?}: {v:?}")))
    }
    let out_dir = field("out_dir")?;
    let member_budget = match field("member_budget")?.as_str() {
        "none" => None,
        v => Some(parse_field("member_budget", v.to_string())?),
    };
    let lane_width = match field("world.lane_width")?.as_str() {
        "auto" => None,
        v => Some(parse_field("world.lane_width", v.to_string())?),
    };
    // Timing and packing are pinned in the manifest (checkpoints predating
    // those fields read as the old defaults); the explicit `pack` keeps
    // the original plan whatever worker count this invocation uses.
    let lease_ttl = match manifest.field("lease_ttl") {
        Some(v) => parse_field("lease_ttl", v.to_string())?,
        None => DEFAULT_LEASE_TTL_MS,
    };
    let retry_base = match manifest.field("retry_base") {
        Some(v) => parse_field("retry_base", v.to_string())?,
        None => DEFAULT_RETRY_BASE_MS,
    };
    let pack = Some(manifest.field("shard_plan") == Some("packed"));
    Ok(Command::Simulate {
        model_dir: PathBuf::from(field("model_dir")?),
        engine: field("world.engine")?,
        out_dir: if out_dir.is_empty() { None } else { Some(PathBuf::from(out_dir)) },
        batch: parse_field("batch", field("batch")?)?,
        rtol: parse_field("rtol", field("rtol")?)?,
        atol: parse_field("atol", field("atol")?)?,
        threads: parse_field("world.threads", field("world.threads")?)?,
        lane_width,
        max_retries: parse_field("max_retries", field("max_retries")?)?,
        member_budget,
        checkpoint_dir: Some(checkpoint_dir.to_path_buf()),
        shard_size: parse_field("shard_size", field("shard_size")?)?,
        workers,
        pack,
        lease_ttl,
        retry_base,
        listen: None,
    })
}

/// The `ensemble` command's resolved configuration (shared by the fresh
/// and resumed paths).
struct EnsembleConfig<'a> {
    model_dir: &'a Path,
    out_dir: Option<&'a PathBuf>,
    replicates: usize,
    seed: u64,
    member: u64,
    threads: usize,
    lane_width: Option<usize>,
    checkpoint_dir: Option<&'a PathBuf>,
    shard_size: usize,
}

/// Writes the per-replicate trajectory/error files and the ensemble
/// mean/variance tables. Pure function of the outcomes, so durable and
/// plain runs (and resumed runs) produce byte-identical artifacts.
fn write_ensemble_outputs(
    out_path: &Path,
    model: &paraspace_rbm::ReactionBasedModel,
    outcomes: &[Result<StochasticTrajectory, StochasticError>],
    stats: &EnsembleStats,
) -> Result<(), CliError> {
    std::fs::create_dir_all(out_path)?;
    let header: String = std::iter::once("t".to_string())
        .chain(model.species().iter().map(|s| s.name.clone()))
        .collect::<Vec<_>>()
        .join("\t");
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(tr) => {
                let mut body = String::with_capacity(64 * tr.times.len());
                body.push_str(&header);
                body.push('\n');
                for (t, state) in tr.times.iter().zip(&tr.states) {
                    body.push_str(&format!("{t:.6e}"));
                    for &c in state {
                        body.push_str(&format!("\t{c}"));
                    }
                    body.push('\n');
                }
                std::fs::write(out_path.join(format!("replicate_{i:05}.tsv")), body)?;
            }
            Err(e) => {
                std::fs::write(
                    out_path.join(format!("replicate_{i:05}.err")),
                    format!("error: {e}\n"),
                )?;
            }
        }
    }
    for (name, table) in
        [("ensemble_mean.tsv", &stats.mean), ("ensemble_variance.tsv", &stats.variance)]
    {
        let mut body = String::new();
        body.push_str(&header);
        body.push('\n');
        for (t, row) in stats.times.iter().zip(table.iter()) {
            body.push_str(&format!("{t:.6e}"));
            for v in row {
                body.push_str(&format!("\t{v:.6e}"));
            }
            body.push('\n');
        }
        std::fs::write(out_path.join(name), body)?;
    }
    Ok(())
}

/// Runs the `ensemble` command for a concrete simulator, on the plain or
/// durable path.
fn run_ensemble<S: StochasticSimulator + Sync>(
    simulator: S,
    cfg: &EnsembleConfig<'_>,
    out: &mut dyn std::io::Write,
    cancel: &CancelToken,
) -> Result<(), CliError> {
    let name = simulator.name();
    let model = biosimware::read_dir(cfg.model_dir)?;
    let times =
        biosimware::read_time_points(cfg.model_dir).unwrap_or_else(|_| vec![1.0, 2.0, 5.0, 10.0]);
    let out_path = cfg.out_dir.cloned().unwrap_or_else(|| cfg.model_dir.join("ensemble"));
    let batch = StochasticBatch::new(simulator)
        .with_seed(cfg.seed)
        .with_member(cfg.member)
        .with_threads(cfg.threads)
        .with_lane_width(cfg.lane_width);

    match cfg.checkpoint_dir {
        None => {
            let start = std::time::Instant::now();
            let result = batch.run(&model, &times, cfg.replicates)?;
            write_ensemble_outputs(&out_path, &model, &result.outcomes, &result.stats)?;
            let ok = result.outcomes.iter().filter(|o| o.is_ok()).count();
            writeln!(
                out,
                "{name} ensemble: {ok}/{} replicates ok; lane width {}; simulated {:.3} ms; host wall {:.1?}",
                cfg.replicates,
                result.lane_width,
                result.simulated_ns / 1e6,
                start.elapsed(),
            )?;
            if let Some(lanes) = &result.lanes {
                writeln!(
                    out,
                    "lanes: {} groups, occupancy {:.1}%, divergence {:.2}x",
                    lanes.groups,
                    lanes.occupancy() * 100.0,
                    lanes.divergence_factor(),
                )?;
            }
        }
        Some(dir) => {
            let checkpoint = Checkpoint::new(dir)
                .with_cancel(cancel.clone())
                .with_world("model_dir", cfg.model_dir.display().to_string())
                .with_world(
                    "out_dir",
                    cfg.out_dir.map(|p| p.display().to_string()).unwrap_or_default(),
                )
                .with_world("threads", cfg.threads.to_string());
            let result = match run_ensemble_durable(
                &model,
                &times,
                cfg.replicates,
                &batch,
                cfg.shard_size,
                &checkpoint,
            ) {
                Ok(r) => r,
                Err(CampaignError::Interrupted { completed, shards, checkpoint_dir }) => {
                    writeln!(
                        out,
                        "interrupted: {completed}/{shards} shards committed to {}",
                        checkpoint_dir.display()
                    )?;
                    return Err(CliError(format!(
                        "interrupted — resume with `paraspace-cli resume {}`",
                        dir.display()
                    )));
                }
                Err(e) => return Err(e.into()),
            };
            write_ensemble_outputs(&out_path, &model, &result.outcomes, &result.stats)?;
            let ok = result.outcomes.iter().filter(|o| o.is_ok()).count();
            writeln!(
                out,
                "{name} ensemble (durable): {ok}/{} replicates ok; simulated {:.3} ms",
                cfg.replicates,
                result.simulated_ns / 1e6,
            )?;
            writeln!(
                out,
                "checkpoint: {} shards ({} replayed, {} executed{})",
                result.report.recovered + result.report.executed,
                result.report.recovered,
                result.report.executed,
                if result.report.truncated_bytes > 0 {
                    format!(", {} torn bytes truncated", result.report.truncated_bytes)
                } else {
                    String::new()
                },
            )?;
        }
    }
    writeln!(out, "ensemble written to {}", out_path.display())?;
    Ok(())
}

/// Reconstructs and re-executes an `ensemble` command from its checkpoint
/// manifest.
fn resume_ensemble(
    checkpoint_dir: &Path,
    manifest: &CampaignManifest,
    out: &mut dyn std::io::Write,
    cancel: &CancelToken,
) -> Result<(), CliError> {
    let field = |key: &str| {
        manifest
            .field(key)
            .map(str::to_string)
            .ok_or_else(|| CliError(format!("checkpoint manifest is missing {key:?}")))
    };
    fn parse_field<T: std::str::FromStr>(key: &str, v: String) -> Result<T, CliError> {
        v.parse().map_err(|_| CliError(format!("malformed manifest field {key:?}: {v:?}")))
    }
    let out_dir = field("world.out_dir")?;
    let lane_width = match field("lane_width")?.as_str() {
        "auto" => None,
        v => Some(parse_field("lane_width", v.to_string())?),
    };
    let cmd = Command::Ensemble {
        model_dir: PathBuf::from(field("world.model_dir")?),
        simulator: field("simulator")?,
        out_dir: if out_dir.is_empty() { None } else { Some(PathBuf::from(out_dir)) },
        replicates: parse_field("replicates", field("replicates")?)?,
        seed: parse_field("seed", field("seed")?)?,
        member: parse_field("member", field("member")?)?,
        threads: parse_field("world.threads", field("world.threads")?)?,
        lane_width,
        checkpoint_dir: Some(checkpoint_dir.to_path_buf()),
        shard_size: parse_field("shard_size", field("shard_size")?)?,
    };
    execute_with_cancel(&cmd, out, cancel)
}

/// Parses a target dynamics file in the `simulate` output format: one row
/// per sample, `t` then one column per species, tab-separated scientific
/// notation, no header. Returns the sample times and the target as a
/// [`Solution`] the fitness and gradient layers index by species.
fn read_target_dynamics(path: &Path, n_species: usize) -> Result<(Vec<f64>, Solution), CliError> {
    let text = std::fs::read_to_string(path)?;
    let mut times = Vec::new();
    let mut states = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != n_species + 1 {
            return Err(CliError(format!(
                "target {} line {}: {} columns, expected t + {n_species} species",
                path.display(),
                lineno + 1,
                cols.len()
            )));
        }
        let parse = |s: &str| {
            s.parse::<f64>().map_err(|_| {
                CliError(format!(
                    "target {} line {}: malformed number {s:?}",
                    path.display(),
                    lineno + 1
                ))
            })
        };
        times.push(parse(cols[0])?);
        states.push(cols[1..].iter().map(|s| parse(s)).collect::<Result<Vec<f64>, _>>()?);
    }
    if times.is_empty() {
        return Err(CliError(format!("target {} holds no samples", path.display())));
    }
    let solution = Solution { times: times.clone(), states, ..Solution::default() };
    Ok((times, solution))
}

/// The top-level manifest a durable `pe` run pins its invocation in (the
/// optimizer checkpoint itself lives under `search/`). Every field is
/// world-defining: the unknowns, bounds, target, optimizer, and search
/// hyperparameters all change the journaled evaluation bytes, so `resume`
/// and re-invocation refuse any difference — the same contract the
/// executor applies to `--lane-width` and `--lease-ttl`.
fn pe_cli_manifest(cmd: &Command) -> CampaignManifest {
    let Command::Pe {
        model_dir,
        optimizer,
        engine,
        unknown,
        log_radius,
        observed,
        target,
        rtol,
        atol,
        threads,
        iterations,
        swarm,
        grad_iterations,
        starts,
        seed,
        out_dir,
        ..
    } = cmd
    else {
        unreachable!("pe_cli_manifest is only called for pe commands")
    };
    let join_indices = |v: &[usize]| {
        v.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",")
    };
    CampaignManifest::new("cli-pe", 0)
        .with_field("model_dir", model_dir.display().to_string())
        .with_field("optimizer", optimizer.clone())
        .with_field("engine", engine.clone())
        .with_field("unknown", unknown.as_deref().map_or("all".to_string(), join_indices))
        .with_field("log_radius", format!("{log_radius:e}"))
        .with_field("observed", observed.as_ref().map_or("all".to_string(), |v| v.join(",")))
        .with_field(
            "target",
            target.as_ref().map_or("self".to_string(), |p| p.display().to_string()),
        )
        .with_field("rtol", format!("{rtol:e}"))
        .with_field("atol", format!("{atol:e}"))
        .with_field("threads", threads.to_string())
        .with_field("iterations", iterations.to_string())
        .with_field("swarm", swarm.map_or("auto".to_string(), |s| s.to_string()))
        .with_field("grad_iterations", grad_iterations.to_string())
        .with_field("starts", starts.to_string())
        .with_field("seed", seed.to_string())
        .with_field("out_dir", out_dir.as_ref().map_or(String::new(), |p| p.display().to_string()))
}

/// Runs the `pe` command: resolve the estimation problem from the model
/// directory and flags, dispatch to the chosen optimizer (durably when a
/// checkpoint directory is given), and write the estimate.
fn run_pe(
    cmd: &Command,
    out: &mut dyn std::io::Write,
    cancel: &CancelToken,
) -> Result<(), CliError> {
    let Command::Pe {
        model_dir,
        optimizer,
        engine,
        unknown,
        log_radius,
        observed,
        target,
        rtol,
        atol,
        threads,
        iterations,
        swarm,
        grad_iterations,
        starts,
        seed,
        out_dir,
        checkpoint_dir,
    } = cmd
    else {
        unreachable!("run_pe is only called for pe commands")
    };
    let model = biosimware::read_dir(model_dir)?;
    let n_species = model.n_species();
    let n_reactions = model.reactions().len();

    let unknown: Vec<usize> = match unknown {
        Some(v) => {
            for &idx in v {
                if idx >= n_reactions {
                    return Err(CliError(format!(
                        "--unknown index {idx} out of range (model has {n_reactions} reactions)"
                    )));
                }
            }
            v.clone()
        }
        None => (0..n_reactions).collect(),
    };
    let observed: Vec<usize> = match observed {
        Some(names) => names
            .iter()
            .map(|name| {
                model.species().iter().position(|s| s.name == *name).ok_or_else(|| {
                    CliError(format!("--observed species {name:?} is not in the model"))
                })
            })
            .collect::<Result<Vec<usize>, _>>()?,
        None => (0..n_species).collect(),
    };
    let k = model.rate_constants();
    let log_bounds: Vec<(f64, f64)> = unknown
        .iter()
        .map(|&idx| {
            // A zero or negative placeholder has no log-center; search
            // around k = 1.
            let center = if k[idx] > 0.0 { k[idx].log10() } else { 0.0 };
            (center - log_radius, center + log_radius)
        })
        .collect();
    let options = SolverOptions {
        rel_tol: *rtol,
        abs_tol: *atol,
        max_steps: 100_000,
        ..SolverOptions::default()
    };
    let engine = engine_by_name(engine, *threads, None, RecoveryPolicy::default(), cancel)?;

    let (time_points, target) = match target {
        Some(path) => read_target_dynamics(path, n_species)?,
        None => {
            // Self-calibration benchmark: the model's current constants
            // are the ground truth the search must recover.
            let times = biosimware::read_time_points(model_dir)
                .unwrap_or_else(|_| vec![1.0, 2.0, 5.0, 10.0]);
            let job = SimulationJob::builder(&model)
                .time_points(times.clone())
                .replicate(1)
                .options(options.clone())
                .build()?;
            let solution = engine
                .run(&job)?
                .outcomes
                .remove(0)
                .solution
                .map_err(|e| CliError(format!("self-calibration target failed: {e}")))?;
            (times, solution)
        }
    };

    let problem = EstimationProblem {
        model: &model,
        unknown: unknown.clone(),
        log_bounds,
        observed,
        target,
        time_points,
        options,
        failed_members: FailedMemberPolicy::default(),
    };
    let pso_cfg =
        PsoConfig { iterations: *iterations, swarm_size: *swarm, seed: *seed, ..PsoConfig::default() };
    let grad_cfg = GradientConfig {
        iterations: *grad_iterations,
        starts: *starts,
        seed: *seed,
        ..GradientConfig::default()
    };
    let chosen = match optimizer.as_str() {
        "pso" => Optimizer::Pso(pso_cfg),
        "lbfgs" => Optimizer::Lbfgs(grad_cfg),
        _ => Optimizer::Hybrid { pso: pso_cfg, gradient: grad_cfg },
    };

    let (result, report) = match checkpoint_dir {
        None => (estimate_with(&problem, engine.as_ref(), &chosen), None),
        Some(dir) => {
            let expected = pe_cli_manifest(cmd);
            let manifest_path = dir.join(MANIFEST_FILE);
            if manifest_path.exists() {
                CampaignManifest::read(&manifest_path)?.verify_matches(&expected)?;
            } else {
                std::fs::create_dir_all(dir)?;
                expected.write_atomic(&manifest_path)?;
            }
            let checkpoint = Checkpoint::new(dir.join("search")).with_cancel(cancel.clone());
            match estimate_durable_with(&problem, engine.as_ref(), &chosen, &checkpoint) {
                Ok((r, rep)) => (r, Some(rep)),
                Err(CampaignError::Interrupted { completed, shards, .. }) => {
                    writeln!(
                        out,
                        "interrupted: {completed}/{shards} shards committed to {}",
                        dir.display()
                    )?;
                    return Err(CliError(format!(
                        "interrupted — resume with `paraspace-cli resume {}`",
                        dir.display()
                    )));
                }
                Err(e) => return Err(e.into()),
            }
        }
    };

    let out_path = out_dir.clone().unwrap_or_else(|| model_dir.join("pe"));
    std::fs::create_dir_all(&out_path)?;
    let mut body = String::with_capacity(16 * n_reactions);
    for (idx, v) in result.rate_constants.iter().enumerate() {
        body.push_str(&format!("{idx}\t{v:e}\n"));
    }
    std::fs::write(out_path.join("estimate.tsv"), body)?;

    writeln!(
        out,
        "pe ({}, {} unknowns): best loss {:.6e} after {} solves",
        chosen.name(),
        unknown.len(),
        result.optimization.best_fitness,
        result.simulations,
    )?;
    for &idx in &unknown {
        writeln!(out, "  k[{idx}] = {:e}", result.rate_constants[idx])?;
    }
    if let Some(rep) = report {
        writeln!(
            out,
            "checkpoint: {} shards ({} replayed, {} executed{})",
            rep.recovered + rep.executed,
            rep.recovered,
            rep.executed,
            if rep.truncated_bytes > 0 {
                format!(", {} torn bytes truncated", rep.truncated_bytes)
            } else {
                String::new()
            },
        )?;
    }
    writeln!(out, "estimate written to {}", out_path.join("estimate.tsv").display())?;
    Ok(())
}

/// Reconstructs and re-executes a `pe` command from its checkpoint
/// manifest. The reconstructed command re-verifies the manifest and
/// resumes the `search/` journal, so a resume under a mutated checkpoint
/// is refused exactly as a mismatched re-invocation would be.
fn resume_pe(
    checkpoint_dir: &Path,
    manifest: &CampaignManifest,
    out: &mut dyn std::io::Write,
    cancel: &CancelToken,
) -> Result<(), CliError> {
    let field = |key: &str| {
        manifest
            .field(key)
            .map(str::to_string)
            .ok_or_else(|| CliError(format!("checkpoint manifest is missing {key:?}")))
    };
    fn parse_field<T: std::str::FromStr>(key: &str, v: String) -> Result<T, CliError> {
        v.parse().map_err(|_| CliError(format!("malformed manifest field {key:?}: {v:?}")))
    }
    let unknown = match field("unknown")?.as_str() {
        "all" => None,
        v => Some(parse_index_list(v, "unknown")?),
    };
    let observed = match field("observed")?.as_str() {
        "all" => None,
        v => Some(v.split(',').map(str::to_string).collect()),
    };
    let target = match field("target")?.as_str() {
        "self" => None,
        v => Some(PathBuf::from(v)),
    };
    let swarm = match field("swarm")?.as_str() {
        "auto" => None,
        v => Some(parse_field("swarm", v.to_string())?),
    };
    let out_dir = field("out_dir")?;
    let cmd = Command::Pe {
        model_dir: PathBuf::from(field("model_dir")?),
        optimizer: field("optimizer")?,
        engine: field("engine")?,
        unknown,
        log_radius: parse_field("log_radius", field("log_radius")?)?,
        observed,
        target,
        rtol: parse_field("rtol", field("rtol")?)?,
        atol: parse_field("atol", field("atol")?)?,
        threads: parse_field("threads", field("threads")?)?,
        iterations: parse_field("iterations", field("iterations")?)?,
        swarm,
        grad_iterations: parse_field("grad_iterations", field("grad_iterations")?)?,
        starts: parse_field("starts", field("starts")?)?,
        seed: parse_field("seed", field("seed")?)?,
        out_dir: if out_dir.is_empty() { None } else { Some(PathBuf::from(out_dir)) },
        checkpoint_dir: Some(checkpoint_dir.to_path_buf()),
    };
    execute_with_cancel(&cmd, out, cancel)
}

/// Everything a durable `simulate` shard executor needs, resolved once.
/// Shard payload bytes are a pure function of (world, shard id): the
/// original process, the coordinator, and `worker` processes rebuilt from
/// the manifest all execute shards through the same world, which is what
/// makes multi-process artifacts byte-identical to single-process runs.
struct SimulateWorld {
    model: paraspace_rbm::ReactionBasedModel,
    time_points: Vec<f64>,
    parameterizations: Vec<Parameterization>,
    options: SolverOptions,
    recovery: RecoveryPolicy,
    engine_name: String,
    threads: usize,
    lane_width: Option<usize>,
    /// Which original member indices each shard holds. Uniform ascending
    /// chunks, or the cost-model packing of `pack_shards` — either way a
    /// pure function of the world, pinned as the manifest's `shard_plan`.
    plan: Vec<Vec<usize>>,
    lease_ttl: u64,
    retry_base: u64,
    model_dir: PathBuf,
    out_dir: Option<PathBuf>,
    manifest: CampaignManifest,
}

impl SimulateWorld {
    /// Resolves a `Simulate` command: reads the model, expands the batch,
    /// and pins the campaign manifest (digests plus resume fields).
    fn load(cmd: &Command) -> Result<Self, CliError> {
        let Command::Simulate {
            model_dir,
            engine: engine_name,
            out_dir,
            batch,
            rtol,
            atol,
            threads,
            lane_width,
            max_retries,
            member_budget,
            shard_size,
            workers,
            pack,
            lease_ttl,
            retry_base,
            ..
        } = cmd
        else {
            unreachable!("SimulateWorld::load is only called for Simulate commands");
        };
        // Surface an unknown engine name before any checkpoint exists.
        engine_by_name(engine_name, 1, None, RecoveryPolicy::default(), &CancelToken::new())?;
        let shard_size = (*shard_size).max(1);
        let model = biosimware::read_dir(model_dir)?;
        let time_points =
            biosimware::read_time_points(model_dir).unwrap_or_else(|_| vec![1.0, 2.0, 5.0, 10.0]);
        let mut parameterizations = biosimware::read_parameterizations(&model, model_dir)?;
        if parameterizations.is_empty() {
            parameterizations = (0..*batch).map(|_| Parameterization::new()).collect();
        }
        let options = SolverOptions {
            rel_tol: *rtol,
            abs_tol: *atol,
            max_steps: 100_000,
            ..SolverOptions::default()
        };
        let recovery = RecoveryPolicy {
            max_relaxations: *max_retries,
            step_budget: *member_budget,
            ..RecoveryPolicy::default()
        };
        // The shard plan is world-defining (it decides which member's
        // bytes land in which shard record), so it is resolved here and
        // pinned in the manifest. Auto (`None`) packs only multi-worker
        // runs, where evening out shard cost keeps N workers busy.
        let packed = pack.unwrap_or(*workers > 1);
        let plan = if packed {
            let job = SimulationJob::builder(&model)
                .time_points(time_points.clone())
                .parameterizations(parameterizations.clone())
                .options(options.clone())
                .build()?;
            pack_shards(&job, (shard_size / 4).max(1), shard_size)
        } else {
            uniform_shards(parameterizations.len(), shard_size)
        };
        let shards = plan.len() as u64;
        let manifest = CampaignManifest::new("cli-simulate", shards)
            .with_digest("model", model_digest(&model))
            .with_digest("times", f64s_digest(&time_points))
            .with_digest("options", options_digest(&options))
            .with_field("model_dir", model_dir.display().to_string())
            .with_field(
                "out_dir",
                out_dir.as_ref().map(|p| p.display().to_string()).unwrap_or_default(),
            )
            .with_field("batch", batch.to_string())
            .with_field("rtol", rtol.to_string())
            .with_field("atol", atol.to_string())
            .with_field("max_retries", max_retries.to_string())
            .with_field(
                "member_budget",
                member_budget.map_or("none".to_string(), |b| b.to_string()),
            )
            .with_field("shard_size", shard_size.to_string())
            .with_field("shard_plan", if packed { "packed" } else { "uniform" })
            .with_field("lease_ttl", lease_ttl.to_string())
            .with_field("retry_base", retry_base.to_string());
        Ok(SimulateWorld {
            model,
            time_points,
            parameterizations,
            options,
            recovery,
            engine_name: engine_name.clone(),
            threads: *threads,
            lane_width: *lane_width,
            plan,
            lease_ttl: *lease_ttl,
            retry_base: *retry_base,
            model_dir: model_dir.clone(),
            out_dir: out_dir.clone(),
            manifest,
        })
    }

    /// The checkpoint with this world's manifest-defining fields attached.
    fn checkpoint(&self, dir: &Path, cancel: &CancelToken) -> Checkpoint {
        Checkpoint::new(dir)
            .with_cancel(cancel.clone())
            .with_world("engine", self.engine_name.clone())
            .with_world("threads", self.threads.to_string())
            .with_world(
                "lane_width",
                self.lane_width.map_or_else(|| "auto".to_string(), |w| w.to_string()),
            )
    }

    /// An engine wired to `cancel` (validated at [`load`](Self::load)).
    fn engine(&self, cancel: &CancelToken) -> Box<dyn Simulator> {
        engine_by_name(&self.engine_name, self.threads, self.lane_width, self.recovery, cancel)
            .expect("engine name was validated when the world was loaded")
    }

    /// The original member indices of one shard, per the pinned plan.
    fn members(&self, shard: u64) -> &[usize] {
        self.plan.get(shard as usize).map_or(&[], Vec::as_slice)
    }

    /// The parameterizations of one shard, gathered by the plan.
    fn chunk(&self, shard: u64) -> Vec<Parameterization> {
        self.members(shard).iter().map(|&i| self.parameterizations[i].clone()).collect()
    }

    /// The dispatch runtime configured with this world's journaled
    /// timing, so the coordinator and every worker (local or networked)
    /// agree on heartbeat deadlines and backoff.
    fn dispatch_config(&self) -> DispatchConfig {
        DispatchConfig {
            lease: LeaseConfig {
                ttl_ms: self.lease_ttl,
                backoff_base_ms: self.retry_base,
                ..LeaseConfig::default()
            },
            ..DispatchConfig::default()
        }
    }

    /// Executes one shard and encodes its journal payload — the shared
    /// executor behind `run_journaled`, the coordinator, and every
    /// attached worker.
    fn shard_payload(&self, engine: &dyn Simulator, shard: u64) -> Result<Vec<u8>, CampaignError> {
        let chunk = self.chunk(shard);
        let job = match SimulationJob::builder(&self.model)
            .time_points(self.time_points.clone())
            .parameterizations(chunk.clone())
            .options(self.options.clone())
            .build()
        {
            Ok(job) => job,
            Err(e @ paraspace_core::SimError::InvalidJob { .. }) => {
                // A shard that fails validation is journaled as a shard of
                // failed members instead of killing the campaign.
                let msg = format!(
                    "error: {e}\ntaxonomy: invalid\nsolver: -\nattempts: 0\nrelaxations: 0\nrerouted: false\nrecovered: false\npanicked: false\n"
                );
                let members = chunk
                    .iter()
                    .map(|_| MemberRecord { ok: false, label: "invalid".into(), body: msg.clone() })
                    .collect();
                return Ok(ShardOutcome {
                    members,
                    total_ns: 0.0,
                    integration_ns: 0.0,
                    io_ns: 0.0,
                }
                .encode());
            }
            Err(e) => return Err(e.into()),
        };
        let result = engine.run(&job)?;
        let members = result
            .outcomes
            .iter()
            .map(|o| match &o.solution {
                Ok(sol) => MemberRecord {
                    ok: true,
                    label: String::new(),
                    body: job.serialize_dynamics(sol),
                },
                Err(e) => MemberRecord {
                    ok: false,
                    label: taxonomy(e).to_string(),
                    body: error_report(o),
                },
            })
            .collect();
        Ok(ShardOutcome {
            members,
            total_ns: result.timing.simulated_total_ns,
            integration_ns: result.timing.simulated_integration_ns,
            io_ns: result.timing.simulated_io_ns,
        }
        .encode())
    }

    /// The journaled payload for a quarantined shard: every member fails
    /// with the `quarantined` taxonomy and a report of the deaths that
    /// condemned the shard, so the campaign completes degraded with the
    /// failure visible in the ordinary `.err` artifacts.
    fn poison_payload(&self, shard: u64, state: &RetryState) -> Vec<u8> {
        let workers: Vec<&str> = state.workers.iter().map(String::as_str).collect();
        let body = format!(
            "error: shard {shard} quarantined after {} worker deaths by {} distinct workers\n\
             taxonomy: quarantined\nworkers: {}\nreasons: {}\n",
            state.deaths,
            state.workers.len(),
            workers.join(", "),
            state.reasons.join(", "),
        );
        let members = self
            .members(shard)
            .iter()
            .map(|_| MemberRecord { ok: false, label: "quarantined".into(), body: body.clone() })
            .collect();
        ShardOutcome { members, total_ns: 0.0, integration_ns: 0.0, io_ns: 0.0 }.encode()
    }

    /// Writes the per-member output files from committed shard payloads
    /// and prints the batch summary. Pure function of the payloads, so
    /// every execution mode materializes byte-identical artifacts.
    fn materialize(
        &self,
        payloads: &[Vec<u8>],
        label: &str,
        out: &mut dyn std::io::Write,
    ) -> Result<PathBuf, CliError> {
        let out_path = self.out_dir.clone().unwrap_or_else(|| self.model_dir.join("out"));
        std::fs::create_dir_all(&out_path)?;
        let n_sims = self.parameterizations.len();
        let mut ok_count = 0usize;
        let mut total_ns = 0.0f64;
        let mut integration_ns = 0.0f64;
        let mut io_ns = 0.0f64;
        let mut label_counts: std::collections::BTreeMap<String, usize> = Default::default();
        for (shard_id, payload) in payloads.iter().enumerate() {
            let shard = ShardOutcome::decode(payload)?;
            let members = self.members(shard_id as u64);
            if shard.members.len() != members.len() {
                return Err(CliError(format!(
                    "shard {shard_id} payload holds {} members but the plan assigns {}",
                    shard.members.len(),
                    members.len(),
                )));
            }
            // Each member's file is named by its *original* batch index —
            // under a packed plan shards hold non-contiguous members, and
            // the artifacts must land exactly where a uniform (or plain,
            // non-durable) run would put them.
            for (m, &index) in shard.members.iter().zip(members) {
                let ext = if m.ok { "tsv" } else { "err" };
                std::fs::write(out_path.join(format!("dynamics_{index:05}.{ext}")), &m.body)?;
                if m.ok {
                    ok_count += 1;
                } else {
                    *label_counts.entry(m.label.clone()).or_default() += 1;
                }
            }
            total_ns += shard.total_ns;
            integration_ns += shard.integration_ns;
            io_ns += shard.io_ns;
        }
        writeln!(
            out,
            "{label}: {ok_count}/{n_sims} simulations ok; simulated {:.3} ms (integration {:.3} ms, i/o {:.3} ms)",
            total_ns / 1e6,
            integration_ns / 1e6,
            io_ns / 1e6,
        )?;
        if !label_counts.is_empty() {
            let parts: Vec<String> =
                label_counts.iter().map(|(label, n)| format!("{label} x{n}")).collect();
            writeln!(out, "failures: {}", parts.join(", "))?;
        }
        Ok(out_path)
    }
}

/// The durable `simulate` path: decompose the batch into numbered shards,
/// journal each completed shard's artifacts (output-file bytes and billed
/// time) in the checkpoint directory, and write the output files only once
/// every shard has committed — so a killed run resumes from the last
/// committed shard and produces byte-identical artifacts.
fn simulate_durable(
    cmd: &Command,
    dir: &Path,
    out: &mut dyn std::io::Write,
    cancel: &CancelToken,
) -> Result<(), CliError> {
    let world = SimulateWorld::load(cmd)?;
    let checkpoint = world.checkpoint(dir, cancel);
    let engine = world.engine(cancel);

    let journaled = run_journaled(&checkpoint, world.manifest.clone(), |shard| {
        world.shard_payload(engine.as_ref(), shard)
    });
    let (payloads, report) = match journaled {
        Ok(r) => r,
        Err(CampaignError::Interrupted { completed, shards, checkpoint_dir }) => {
            writeln!(
                out,
                "interrupted: {completed}/{shards} shards committed to {}",
                checkpoint_dir.display()
            )?;
            return Err(CliError(format!(
                "interrupted — resume with `paraspace-cli resume {}`",
                dir.display()
            )));
        }
        Err(e) => return Err(e.into()),
    };

    // Every shard is committed: materialize the artifacts.
    let label = format!("{} (durable)", world.engine_name);
    let out_path = world.materialize(&payloads, &label, out)?;
    writeln!(
        out,
        "checkpoint: {} shards ({} replayed, {} executed{})",
        report.recovered + report.executed,
        report.recovered,
        report.executed,
        if report.truncated_bytes > 0 {
            format!(", {} torn bytes truncated", report.truncated_bytes)
        } else {
            String::new()
        },
    )?;
    writeln!(out, "dynamics written to {}", out_path.display())?;
    Ok(())
}

/// The multi-process durable `simulate` path: this process becomes the
/// coordinator and spawns `workers` child `worker` processes against the
/// checkpoint directory.
fn simulate_dispatched(
    cmd: &Command,
    dir: &Path,
    workers: usize,
    listen: Option<&str>,
    out: &mut dyn std::io::Write,
    cancel: &CancelToken,
) -> Result<(), CliError> {
    let world = SimulateWorld::load(cmd)?;
    let checkpoint = world.checkpoint(dir, cancel);
    coordinate_processes(&world, &checkpoint, workers, listen, out)
}

/// The `coordinate` subcommand: rebuild the world from an existing
/// checkpoint manifest and run the coordinator over it, optionally
/// spawning worker children (others may attach with `worker`).
fn run_coordinator(
    dir: &Path,
    workers: usize,
    listen: Option<&str>,
    out: &mut dyn std::io::Write,
    cancel: &CancelToken,
) -> Result<(), CliError> {
    let manifest = CampaignManifest::read(&dir.join(MANIFEST_FILE))?;
    if manifest.kind() != "cli-simulate" {
        return Err(CliError(format!(
            "checkpoint at {} is a {:?} campaign; only `simulate` campaigns dispatch to workers",
            dir.display(),
            manifest.kind()
        )));
    }
    let cmd = simulate_cmd_from_manifest(dir, &manifest, workers)?;
    let world = SimulateWorld::load(&cmd)?;
    let checkpoint = world.checkpoint(dir, cancel);
    coordinate_processes(&world, &checkpoint, workers, listen, out)
}

/// The coordinator over worker *processes*: write the manifest, spawn
/// worker children running the `worker` subcommand against the same
/// checkpoint directory, run the merge/expiry/quarantine loop, and
/// materialize the artifacts once every shard commits. When every child
/// has died and shards remain, a replacement is spawned (bounded), so a
/// campaign survives SIGKILL of any or all of its workers.
fn coordinate_processes(
    world: &SimulateWorld,
    checkpoint: &Checkpoint,
    spawn_workers: usize,
    listen: Option<&str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    // The manifest must be on disk before the first child starts: workers
    // rebuild their world from it.
    let full_manifest = checkpoint.apply_world(world.manifest.clone());
    drop(Journal::open_or_create(checkpoint.dir(), &full_manifest)?);
    let config = world.dispatch_config();

    // With --listen, bind the transport server *before* any child spawns
    // so `--listen 127.0.0.1:0` can hand children the resolved port.
    let mut server = match listen {
        Some(addr) => {
            let server = CoordinatorServer::start(
                addr,
                checkpoint.dir(),
                &full_manifest,
                ServerConfig {
                    lease: config.lease.clone(),
                    poll_ms: config.poll_ms,
                    idle_disconnect_ms: None,
                },
            )
            .map_err(|e| CliError(format!("cannot listen on {addr}: {e}")))?;
            writeln!(out, "coordinator listening on {}", server.local_addr())?;
            Some(server)
        }
        None => None,
    };
    let connect_addr = server.as_ref().map(|s| s.local_addr().to_string());

    let spawn_child = |id: &str| -> std::io::Result<std::process::Child> {
        let mut child = std::process::Command::new(std::env::current_exe()?);
        child.arg("worker");
        match &connect_addr {
            Some(addr) => child.arg("--connect").arg(addr),
            None => child.arg(checkpoint.dir()),
        };
        child
            .arg("--worker-id")
            .arg(id)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
    };
    // Worker ids embed this coordinator's pid and a sequence number so
    // every incarnation (including respawns and coordinator restarts) is
    // unique — a successor reusing a dead worker's id would keep the dead
    // worker's orphaned lease looking alive with its own heartbeats.
    let pid = std::process::id();
    let seq = std::cell::Cell::new(0u64);
    let next_id = |prefix: &str| {
        let n = seq.get();
        seq.set(n + 1);
        format!("{prefix}{n}-{pid}")
    };
    let children = Children::new();
    for _ in 0..spawn_workers {
        children.push(spawn_child(&next_id("w"))?);
    }
    let respawned = std::cell::Cell::new(0u64);
    let respawn_cap = (spawn_workers as u64).max(1) * 4;

    let result = coordinate(
        checkpoint,
        world.manifest.clone(),
        &config,
        |shard, state| world.poison_payload(shard, state),
        |status| {
            children.reap_exited();
            if spawn_workers > 0 && children.is_empty() && status.committed < status.shards {
                if respawned.get() >= respawn_cap {
                    return TickDirective::GiveUp;
                }
                respawned.set(respawned.get() + 1);
                if let Ok(c) = spawn_child(&next_id("r")) {
                    children.push(c);
                }
            }
            TickDirective::Continue
        },
    );

    match result {
        Ok((payloads, report)) => {
            // Children observe completion through the shard log (or the
            // transport's campaign-complete reply) and exit on their own;
            // wait so none outlive the campaign.
            children.wait_all();
            if let Some(server) = &mut server {
                server.shutdown();
            }
            let label = format!("{} (dispatched)", world.engine_name);
            let out_path = world.materialize(&payloads, &label, out)?;
            writeln!(
                out,
                "dispatch: {} shards ({} recovered, {} merged); {} reassignments; {} worker segments",
                report.shards, report.recovered, report.merged, report.reassignments,
                report.workers_seen,
            )?;
            if !report.quarantined.is_empty() {
                writeln!(
                    out,
                    "quarantined shards {:?}: journaled as poisoned outcomes; campaign completed degraded",
                    report.quarantined,
                )?;
            }
            writeln!(out, "dynamics written to {}", out_path.display())?;
            Ok(())
        }
        Err(CampaignError::Interrupted { completed, shards, checkpoint_dir }) => {
            // `children` drops here: kill + reap every spawned worker.
            writeln!(
                out,
                "interrupted: {completed}/{shards} shards committed to {}",
                checkpoint_dir.display()
            )?;
            Err(CliError(format!(
                "interrupted — resume with `paraspace-cli resume {}`",
                checkpoint.dir().display()
            )))
        }
        Err(e) => Err(e.into()),
    }
}

/// The `worker` subcommand: rebuild the world from the shared checkpoint's
/// manifest, verify it matches what the coordinator pinned, and run the
/// lease claim/execute/commit loop until the campaign completes (or this
/// worker is cancelled, killed by chaos, or loses its heartbeat).
fn run_worker(
    dir: &Path,
    worker_id: Option<&str>,
    chaos: &WorkerChaos,
    out: &mut dyn std::io::Write,
    cancel: &CancelToken,
) -> Result<(), CliError> {
    let on_disk = CampaignManifest::read(&dir.join(MANIFEST_FILE))?;
    if on_disk.kind() != "cli-simulate" {
        return Err(CliError(format!(
            "checkpoint at {} is a {:?} campaign; only `simulate` campaigns dispatch to workers",
            dir.display(),
            on_disk.kind()
        )));
    }
    let cmd = simulate_cmd_from_manifest(dir, &on_disk, 0)?;
    let world = SimulateWorld::load(&cmd)?;
    // Guard against a world that drifted since the manifest was written
    // (model files edited under the checkpoint, tolerances changed, ...).
    let expected = world.checkpoint(dir, cancel).apply_world(world.manifest.clone());
    on_disk.verify_matches(&expected)?;

    let id = worker_id.map_or_else(|| format!("pid{}", std::process::id()), str::to_string);
    let config = world.dispatch_config();
    let report =
        worker_loop(dir, &id, world.manifest.shards(), &config, cancel, chaos, |shard, token| {
            let engine = world.engine(token);
            world.shard_payload(engine.as_ref(), shard)
        })?;
    writeln!(
        out,
        "worker {id}: executed {} shards ({} leases lost to reassignment)",
        report.executed, report.lost_leases,
    )?;
    if report.died {
        return Err(CliError(format!(
            "worker {id} presumed dead (heartbeat lost) — its shard will be reassigned"
        )));
    }
    if report.cancelled {
        writeln!(out, "worker {id}: cancelled; released its lease")?;
    }
    Ok(())
}

/// The `worker --connect` path: attach to a coordinator's transport
/// server over TCP, rebuild the world from the handshake's manifest text
/// (the model directory it names must be readable at the same path on
/// this machine), verify it matches what the coordinator pinned, and run
/// the networked claim → execute → stream → commit loop.
fn run_net_worker(
    addr: &str,
    worker_id: Option<&str>,
    out: &mut dyn std::io::Write,
    cancel: &CancelToken,
) -> Result<(), CliError> {
    let id = worker_id.map_or_else(|| format!("pid{}", std::process::id()), str::to_string);
    let (client, info) = WorkerClient::connect(addr, &id, ClientOptions::default())
        .map_err(|e| CliError(format!("cannot reach coordinator at {addr}: {e}")))?;
    let on_wire = CampaignManifest::from_text(&info.manifest_text)?;
    if on_wire.kind() != "cli-simulate" {
        return Err(CliError(format!(
            "coordinator at {addr} serves a {:?} campaign; only `simulate` campaigns dispatch to workers",
            on_wire.kind()
        )));
    }
    // Rebuild the world from the streamed manifest exactly as a
    // filesystem worker rebuilds it from the on-disk one, and hold it to
    // the same drift check. The checkpoint path in the reconstructed
    // command is never touched on this side of the wire.
    let cmd = simulate_cmd_from_manifest(Path::new(""), &on_wire, 0)?;
    let world = SimulateWorld::load(&cmd)?;
    let expected = world.checkpoint(Path::new(""), cancel).apply_world(world.manifest.clone());
    on_wire.verify_matches(&expected)?;

    writeln!(
        out,
        "worker {id}: attached to {addr} ({} shards, lease ttl {} ms)",
        world.manifest.shards(),
        info.lease.ttl_ms,
    )?;
    let report = client
        .run(cancel, |shard, token| {
            let engine = world.engine(token);
            world.shard_payload(engine.as_ref(), shard).map_err(|e| e.to_string())
        })
        .map_err(|e| match e {
            WorkerError::Transport(t) => match t {
                TransportError::Protocol(m) => CliError(format!("coordinator refused: {m}")),
                t => CliError(format!(
                    "lost the coordinator at {addr} ({t}); its lease will expire and the shard \
                     will be reassigned"
                )),
            },
            WorkerError::Execute(m) => CliError(format!("shard execution failed: {m}")),
        })?;
    writeln!(
        out,
        "worker {id}: executed {} shards ({} committed, {} leases lost, {} reconnects)",
        report.executed, report.committed, report.lost_leases, report.reconnects,
    )?;
    if report.cancelled {
        writeln!(out, "worker {id}: cancelled")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_help_variants() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn parse_simulate_defaults_and_flags() {
        let cmd = parse(&argv(
            "simulate /tmp/model --engine lsoda --batch 8 --rtol 1e-4 --threads 4 \
             --lane-width 4 --max-retries 3 --member-budget 5000 --checkpoint-dir /tmp/ckpt \
             --shard-size 16",
        ))
        .unwrap();
        match cmd {
            Command::Simulate {
                model_dir,
                engine,
                batch,
                rtol,
                atol,
                out_dir,
                threads,
                lane_width,
                max_retries,
                member_budget,
                checkpoint_dir,
                shard_size,
                workers,
                pack,
                lease_ttl,
                retry_base,
                listen,
            } => {
                assert_eq!(model_dir, PathBuf::from("/tmp/model"));
                assert_eq!(engine, "lsoda");
                assert_eq!(batch, 8);
                assert_eq!(rtol, 1e-4);
                assert_eq!(atol, 1e-12);
                assert_eq!(out_dir, None);
                assert_eq!(threads, 4);
                assert_eq!(lane_width, Some(4));
                assert_eq!(max_retries, 3);
                assert_eq!(member_budget, Some(5000));
                assert_eq!(checkpoint_dir, Some(PathBuf::from("/tmp/ckpt")));
                assert_eq!(shard_size, 16);
                assert_eq!(workers, 0);
                assert_eq!(pack, None, "packing defaults to auto");
                assert_eq!(lease_ttl, DEFAULT_LEASE_TTL_MS);
                assert_eq!(retry_base, DEFAULT_RETRY_BASE_MS);
                assert_eq!(listen, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("simulate /tmp/model")).unwrap() {
            Command::Simulate {
                lane_width,
                max_retries,
                member_budget,
                checkpoint_dir,
                shard_size,
                ..
            } => {
                assert_eq!(lane_width, None, "lane width defaults to auto");
                assert_eq!(max_retries, 0, "retries default off");
                assert_eq!(member_budget, None, "no default step budget");
                assert_eq!(checkpoint_dir, None, "durable path is opt-in");
                assert_eq!(shard_size, DEFAULT_SHARD_SIZE);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_transport_and_packing_flags() {
        match parse(&argv(
            "simulate /m --checkpoint-dir /c --workers 3 --listen 127.0.0.1:0 \
             --pack-shards --lease-ttl 750 --retry-base 40",
        ))
        .unwrap()
        {
            Command::Simulate { workers, pack, lease_ttl, retry_base, listen, .. } => {
                assert_eq!(workers, 3);
                assert_eq!(pack, Some(true));
                assert_eq!(lease_ttl, 750);
                assert_eq!(retry_base, 40);
                assert_eq!(listen, Some("127.0.0.1:0".into()));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("simulate /m --checkpoint-dir /c --workers 4 --no-pack-shards")).unwrap()
        {
            Command::Simulate { pack, .. } => assert_eq!(pack, Some(false)),
            other => panic!("wrong parse: {other:?}"),
        }
        // Timing must be positive; --listen and --workers need a
        // checkpoint to serve from.
        assert!(parse(&argv("simulate /m --checkpoint-dir /c --lease-ttl 0")).is_err());
        assert!(parse(&argv("simulate /m --checkpoint-dir /c --retry-base 0")).is_err());
        assert!(parse(&argv("simulate /m --listen 127.0.0.1:0")).is_err());

        match parse(&argv("coordinate /c --workers 2 --listen 0.0.0.0:7700")).unwrap() {
            Command::Coordinate { workers, listen, .. } => {
                assert_eq!(workers, 2);
                assert_eq!(listen, Some("0.0.0.0:7700".into()));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("worker --connect host:7700 --worker-id w9")).unwrap() {
            Command::Worker { checkpoint_dir, connect, worker_id, .. } => {
                assert_eq!(checkpoint_dir, None);
                assert_eq!(connect, Some("host:7700".into()));
                assert_eq!(worker_id, Some("w9".into()));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("worker")).is_err(), "needs a directory or --connect");
        assert!(parse(&argv("worker /c --connect host:7700")).is_err(), "not both");
    }

    #[test]
    fn parse_lane_width_auto_and_errors() {
        match parse(&argv("simulate /tmp/model --lane-width auto")).unwrap() {
            Command::Simulate { lane_width, .. } => assert_eq!(lane_width, None),
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("simulate /tmp/model --lane-width 1")).unwrap() {
            Command::Simulate { lane_width, .. } => {
                assert_eq!(lane_width, Some(1), "1 pins the scalar path")
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("simulate /tmp/model --lane-width 0")).is_err());
        assert!(parse(&argv("simulate /tmp/model --lane-width wide")).is_err());
        assert!(parse(&argv("simulate /tmp/model --lane-width")).is_err());
    }

    #[test]
    fn parse_ensemble_defaults_and_flags() {
        let cmd = parse(&argv(
            "ensemble /tmp/model --simulator ssa --replicates 256 --seed 9 --member 2 \
             --threads 4 --lane-width 8 --out /tmp/ens --checkpoint-dir /tmp/ck --shard-size 32",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Ensemble {
                model_dir: PathBuf::from("/tmp/model"),
                simulator: "ssa".into(),
                out_dir: Some(PathBuf::from("/tmp/ens")),
                replicates: 256,
                seed: 9,
                member: 2,
                threads: 4,
                lane_width: Some(8),
                checkpoint_dir: Some(PathBuf::from("/tmp/ck")),
                shard_size: 32,
            }
        );
        match parse(&argv("ensemble /tmp/model")).unwrap() {
            Command::Ensemble {
                simulator,
                replicates,
                seed,
                member,
                lane_width,
                shard_size,
                ..
            } => {
                assert_eq!(simulator, "tau-leaping", "lockstep lanes are the default");
                assert_eq!(replicates, 100);
                assert_eq!(seed, 0);
                assert_eq!(member, 0);
                assert_eq!(lane_width, None, "lane width defaults to auto");
                assert_eq!(shard_size, DEFAULT_SHARD_SIZE);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("ensemble")).is_err());
        assert!(parse(&argv("ensemble /m --replicates nope")).is_err());
        assert!(parse(&argv("ensemble /m --lane-width 0")).is_err());
    }

    #[test]
    fn parse_resume() {
        assert_eq!(
            parse(&argv("resume /tmp/ckpt")).unwrap(),
            Command::Resume { checkpoint_dir: PathBuf::from("/tmp/ckpt"), workers: 0 }
        );
        assert_eq!(
            parse(&argv("resume /tmp/ckpt --workers 4")).unwrap(),
            Command::Resume { checkpoint_dir: PathBuf::from("/tmp/ckpt"), workers: 4 }
        );
        assert!(parse(&argv("resume")).is_err());
        assert!(parse(&argv("resume /a /b")).is_err());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&argv("simulate")).is_err());
        assert!(parse(&argv("simulate /m --batch notanumber")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("convert onlyone")).is_err());
        assert!(parse(&argv("generate --species 5 /tmp/x")).is_err()); // missing --reactions
    }

    #[test]
    fn parse_generate_and_recommend() {
        let g = parse(&argv("generate --species 10 --reactions 20 --seed 7 /tmp/gen")).unwrap();
        assert_eq!(
            g,
            Command::Generate {
                species: 10,
                reactions: 20,
                seed: 7,
                out_dir: PathBuf::from("/tmp/gen")
            }
        );
        let r = parse(&argv("recommend --species 64 --reactions 64 --sims 512")).unwrap();
        assert_eq!(r, Command::Recommend { species: 64, reactions: 64, sims: 512 });
    }

    #[test]
    fn end_to_end_generate_then_simulate() {
        let dir = std::env::temp_dir().join(format!("paraspace_cli_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut log = Vec::new();
        execute(
            &Command::Generate { species: 6, reactions: 8, seed: 3, out_dir: dir.clone() },
            &mut log,
        )
        .unwrap();
        execute(
            &Command::Simulate {
                model_dir: dir.clone(),
                engine: "fine-coarse".into(),
                out_dir: None,
                batch: 4,
                rtol: 1e-6,
                atol: 1e-12,
                threads: 2,
                lane_width: None,
                max_retries: 0,
                member_budget: None,
                checkpoint_dir: None,
                shard_size: DEFAULT_SHARD_SIZE,
                workers: 0,
                pack: None,
                lease_ttl: DEFAULT_LEASE_TTL_MS,
                retry_base: DEFAULT_RETRY_BASE_MS,
                listen: None,
            },
            &mut log,
        )
        .unwrap();
        let outputs: Vec<_> = std::fs::read_dir(dir.join("out")).unwrap().collect();
        assert_eq!(outputs.len(), 4, "one dynamics file per simulation");
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("4/4 simulations ok"), "log: {text}");
        assert!(text.contains("health: 4/4 ok"), "log: {text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_convert_roundtrip() {
        let dir = std::env::temp_dir().join(format!("paraspace_cli_conv_{}", std::process::id()));
        let xml = dir.with_extension("xml");
        std::fs::remove_dir_all(&dir).ok();
        let mut log = Vec::new();
        execute(
            &Command::Generate { species: 5, reactions: 6, seed: 1, out_dir: dir.clone() },
            &mut log,
        )
        .unwrap();
        execute(&Command::Convert { from: dir.clone(), to: xml.clone() }, &mut log).unwrap();
        let dir2 =
            dir.with_file_name(format!("{}_back", dir.file_name().unwrap().to_string_lossy()));
        execute(&Command::Convert { from: xml.clone(), to: dir2.clone() }, &mut log).unwrap();
        let a = paraspace_rbm::biosimware::read_dir(&dir).unwrap();
        let b = paraspace_rbm::biosimware::read_dir(&dir2).unwrap();
        assert_eq!(a.n_species(), b.n_species());
        assert_eq!(a.n_reactions(), b.n_reactions());
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
        std::fs::remove_file(&xml).ok();
    }

    #[test]
    fn parse_pe_defaults_and_flags() {
        let cmd = parse(&argv(
            "pe /tmp/model --optimizer lbfgs --engine fine-coarse --unknown 0,3 \
             --log-radius 2.0 --observed A,B --target /tmp/target.tsv --rtol 1e-8 \
             --threads 4 --iterations 12 --swarm 24 --grad-iterations 30 --starts 2 \
             --seed 9 --out /tmp/pe --checkpoint-dir /tmp/ck",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Pe {
                model_dir: PathBuf::from("/tmp/model"),
                optimizer: "lbfgs".into(),
                engine: "fine-coarse".into(),
                unknown: Some(vec![0, 3]),
                log_radius: 2.0,
                observed: Some(vec!["A".into(), "B".into()]),
                target: Some(PathBuf::from("/tmp/target.tsv")),
                rtol: 1e-8,
                atol: 1e-12,
                threads: 4,
                iterations: 12,
                swarm: Some(24),
                grad_iterations: 30,
                starts: 2,
                seed: 9,
                out_dir: Some(PathBuf::from("/tmp/pe")),
                checkpoint_dir: Some(PathBuf::from("/tmp/ck")),
            }
        );
        match parse(&argv("pe /tmp/model")).unwrap() {
            Command::Pe { optimizer, engine, unknown, observed, target, swarm, .. } => {
                assert_eq!(optimizer, "hybrid", "hybrid is the default search");
                assert_eq!(engine, "lsoda");
                assert_eq!(unknown, None, "all constants unknown by default");
                assert_eq!(observed, None, "all species observed by default");
                assert_eq!(target, None, "self-calibration by default");
                assert_eq!(swarm, None, "swarm size defaults to the heuristic");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("pe")).is_err(), "needs a model directory");
        assert!(parse(&argv("pe /m --optimizer annealing")).is_err());
        assert!(parse(&argv("pe /m --unknown 0,x")).is_err());
        assert!(parse(&argv("pe /m --log-radius 0")).is_err());
        assert!(parse(&argv("pe /m --starts 0")).is_err());
    }

    #[test]
    fn end_to_end_pe_recovers_constants_and_pins_the_optimizer() {
        use paraspace_rbm::{Reaction, ReactionBasedModel};
        let base = std::env::temp_dir().join(format!("paraspace_cli_pe_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();

        // Ground truth: A -> B -> C at rates (1.5, 0.4). The target file is
        // its trajectory in the `simulate` output format.
        let mut truth = ReactionBasedModel::new();
        let a = truth.add_species("A", 1.0);
        let b = truth.add_species("B", 0.0);
        let c = truth.add_species("C", 0.0);
        truth.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.5)).unwrap();
        truth.add_reaction(Reaction::mass_action(&[(b, 1)], &[(c, 1)], 0.4)).unwrap();
        let times: Vec<f64> = (1..=8).map(|i| i as f64 * 0.5).collect();
        let engine = CpuEngine::new(CpuSolverKind::Lsoda);
        let job =
            SimulationJob::builder(&truth).time_points(times.clone()).replicate(1).build().unwrap();
        let sol = engine.run(&job).unwrap().outcomes.remove(0).solution.unwrap();
        let mut tsv = String::new();
        for (t, state) in sol.times.iter().zip(&sol.states) {
            tsv.push_str(&format!("{t:e}"));
            for v in state {
                tsv.push_str(&format!("\t{v:e}"));
            }
            tsv.push('\n');
        }
        let target_path = base.join("target.tsv");
        std::fs::write(&target_path, tsv).unwrap();

        // The searched model starts from placeholder constants (1, 1).
        let mut placeholder = ReactionBasedModel::new();
        let a = placeholder.add_species("A", 1.0);
        let b = placeholder.add_species("B", 0.0);
        let c = placeholder.add_species("C", 0.0);
        placeholder.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0)).unwrap();
        placeholder.add_reaction(Reaction::mass_action(&[(b, 1)], &[(c, 1)], 1.0)).unwrap();
        let model_dir = base.join("model");
        biosimware::write_dir(&placeholder, &model_dir).unwrap();
        biosimware::write_time_points(&times, &model_dir).unwrap();

        let ckpt = base.join("ckpt");
        let cmd = parse(&argv(&format!(
            "pe {} --optimizer lbfgs --target {} --starts 1 --checkpoint-dir {}",
            model_dir.display(),
            target_path.display(),
            ckpt.display(),
        )))
        .unwrap();
        let mut log = Vec::new();
        execute(&cmd, &mut log).unwrap();
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("pe (lbfgs, 2 unknowns)"), "log: {text}");

        let estimate = std::fs::read_to_string(model_dir.join("pe/estimate.tsv")).unwrap();
        let ks: Vec<f64> = estimate
            .lines()
            .map(|l| l.split('\t').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!((ks[0] - 1.5).abs() < 1e-2, "k1 = {}", ks[0]);
        assert!((ks[1] - 0.4).abs() < 1e-2, "k2 = {}", ks[1]);

        // Re-running under a different optimizer must be refused by the
        // checkpoint manifest, not silently restarted.
        let mismatched = parse(&argv(&format!(
            "pe {} --optimizer pso --target {} --starts 1 --checkpoint-dir {}",
            model_dir.display(),
            target_path.display(),
            ckpt.display(),
        )))
        .unwrap();
        let err = execute(&mismatched, &mut Vec::new()).unwrap_err();
        assert!(err.0.contains("optimizer"), "mismatch must name the optimizer pin: {}", err.0);

        // `resume` reconstructs the command from the manifest and replays
        // the completed search bitwise (no evaluations re-executed).
        let mut log = Vec::new();
        execute(&Command::Resume { checkpoint_dir: ckpt.clone(), workers: 0 }, &mut log).unwrap();
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("pe (lbfgs, 2 unknowns)"), "log: {text}");
        assert!(text.contains(", 0 executed"), "resume must replay, not re-run: {text}");

        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn unknown_engine_is_reported() {
        let err = match engine_by_name(
            "quantum",
            1,
            None,
            RecoveryPolicy::default(),
            &CancelToken::new(),
        ) {
            Err(e) => e,
            Ok(_) => panic!("unknown engine must be rejected"),
        };
        assert!(err.to_string().contains("quantum"));
    }

    fn simulate_cmd(model_dir: &Path, checkpoint: Option<PathBuf>, batch: usize) -> Command {
        Command::Simulate {
            model_dir: model_dir.to_path_buf(),
            engine: "lsoda".into(),
            out_dir: None,
            batch,
            rtol: 1e-6,
            atol: 1e-12,
            threads: 2,
            lane_width: None,
            max_retries: 0,
            member_budget: None,
            checkpoint_dir: checkpoint,
            shard_size: 2,
            workers: 0,
            pack: None,
            lease_ttl: DEFAULT_LEASE_TTL_MS,
            retry_base: DEFAULT_RETRY_BASE_MS,
            listen: None,
        }
    }

    fn read_outputs(out_dir: &Path) -> std::collections::BTreeMap<String, Vec<u8>> {
        std::fs::read_dir(out_dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap())
            })
            .collect()
    }

    #[test]
    fn durable_simulate_matches_plain_and_resumes_after_interrupt() {
        let base = std::env::temp_dir().join(format!("paraspace_cli_dur_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let model_a = base.join("model_a");
        let model_b = base.join("model_b");
        let mut log = Vec::new();
        for m in [&model_a, &model_b] {
            execute(
                &Command::Generate { species: 6, reactions: 8, seed: 3, out_dir: m.clone() },
                &mut log,
            )
            .unwrap();
        }

        // Plain run on model A, durable run on the identical model B: the
        // dynamics artifacts must be byte-identical.
        execute(&simulate_cmd(&model_a, None, 5), &mut log).unwrap();
        let ckpt = base.join("ckpt");
        execute(&simulate_cmd(&model_b, Some(ckpt.clone()), 5), &mut log).unwrap();
        let plain = read_outputs(&model_a.join("out"));
        let durable = read_outputs(&model_b.join("out"));
        assert_eq!(plain.len(), 5);
        assert_eq!(plain, durable, "durable artifacts must be byte-identical to plain");

        // Interrupt a fresh durable run with a pre-tripped token (as SIGINT
        // before the first shard would), then resume: identical artifacts.
        let model_c = base.join("model_c");
        execute(
            &Command::Generate { species: 6, reactions: 8, seed: 3, out_dir: model_c.clone() },
            &mut log,
        )
        .unwrap();
        let ckpt_c = base.join("ckpt_c");
        let tripped = CancelToken::new();
        tripped.cancel();
        let err = execute_with_cancel(
            &simulate_cmd(&model_c, Some(ckpt_c.clone()), 5),
            &mut log,
            &tripped,
        )
        .unwrap_err();
        assert!(err.to_string().contains("resume"), "interruption names the resume command: {err}");
        assert!(!model_c.join("out").exists(), "no artifacts before all shards commit");
        execute(&Command::Resume { checkpoint_dir: ckpt_c.clone(), workers: 0 }, &mut log).unwrap();
        assert_eq!(plain, read_outputs(&model_c.join("out")));
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("interrupted: 0/3 shards committed"), "log: {text}");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn durable_simulate_survives_torn_journal_tail() {
        let base = std::env::temp_dir().join(format!("paraspace_cli_torn_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let model = base.join("model");
        let ckpt = base.join("ckpt");
        let mut log = Vec::new();
        execute(
            &Command::Generate { species: 6, reactions: 8, seed: 5, out_dir: model.clone() },
            &mut log,
        )
        .unwrap();
        execute(&simulate_cmd(&model, Some(ckpt.clone()), 6), &mut log).unwrap();
        let baseline = read_outputs(&model.join("out"));

        // Tear the journal tail and wipe the outputs; the re-run truncates
        // the torn record, re-executes that shard, and reproduces the
        // artifacts byte for byte.
        let log_file = ckpt.join(paraspace_journal::LOG_FILE);
        let len = std::fs::metadata(&log_file).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&log_file).unwrap().set_len(len - 5).unwrap();
        std::fs::remove_dir_all(model.join("out")).unwrap();
        execute(&simulate_cmd(&model, Some(ckpt.clone()), 6), &mut log).unwrap();
        assert_eq!(baseline, read_outputs(&model.join("out")));
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("torn bytes truncated"), "log: {text}");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn resume_refuses_changed_world() {
        let base = std::env::temp_dir().join(format!("paraspace_cli_world_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let model = base.join("model");
        let ckpt = base.join("ckpt");
        let mut log = Vec::new();
        execute(
            &Command::Generate { species: 5, reactions: 6, seed: 2, out_dir: model.clone() },
            &mut log,
        )
        .unwrap();
        execute(&simulate_cmd(&model, Some(ckpt.clone()), 4), &mut log).unwrap();

        // Re-running the same checkpoint with a different engine must be
        // refused — the journaled bytes belong to a different world.
        let mut changed = simulate_cmd(&model, Some(ckpt.clone()), 4);
        if let Command::Simulate { engine, .. } = &mut changed {
            *engine = "fine".into();
        }
        let err = execute(&changed, &mut log).unwrap_err();
        assert!(err.to_string().contains("engine"), "mismatch names the field: {err}");

        // Pinning a different lane width is likewise a different world (it
        // changes the billed schedule even though trajectories are bitwise
        // identical).
        let mut repinned = simulate_cmd(&model, Some(ckpt.clone()), 4);
        if let Command::Simulate { lane_width, .. } = &mut repinned {
            *lane_width = Some(2);
        }
        let err = execute(&repinned, &mut log).unwrap_err();
        assert!(err.to_string().contains("lane_width"), "mismatch names the field: {err}");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn err_files_carry_recovery_log_and_taxonomy() {
        // A nonsensical tolerance forces every member to fail; the .err
        // artifacts must carry the full recovery log and taxonomy label.
        let base = std::env::temp_dir().join(format!("paraspace_cli_err_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let model = base.join("model");
        let mut log = Vec::new();
        execute(
            &Command::Generate { species: 6, reactions: 8, seed: 3, out_dir: model.clone() },
            &mut log,
        )
        .unwrap();
        let mut cmd = simulate_cmd(&model, None, 2);
        if let Command::Simulate { rtol, atol, max_retries, .. } = &mut cmd {
            // Keep tolerances valid but impossible to satisfy within the
            // step ceiling by shrinking them to the representable floor.
            *rtol = 1e-300;
            *atol = 1e-305;
            *max_retries = 1;
        }
        execute(&cmd, &mut log).unwrap();
        let outputs = read_outputs(&model.join("out"));
        let err_file = outputs.iter().find(|(name, _)| name.ends_with(".err"));
        if let Some((name, bytes)) = err_file {
            let text = String::from_utf8_lossy(bytes);
            for key in ["error:", "taxonomy:", "solver:", "attempts:", "relaxations:", "rerouted:"]
            {
                assert!(text.contains(key), "{name} missing {key:?}: {text}");
            }
        }
        std::fs::remove_dir_all(&base).ok();
    }

    fn ensemble_cmd(model_dir: &Path, checkpoint: Option<PathBuf>, threads: usize) -> Command {
        Command::Ensemble {
            model_dir: model_dir.to_path_buf(),
            simulator: "tau-leaping".into(),
            out_dir: None,
            replicates: 7,
            seed: 11,
            member: 0,
            threads,
            lane_width: None,
            checkpoint_dir: checkpoint,
            shard_size: 3,
        }
    }

    #[test]
    fn ensemble_end_to_end_writes_replicates_and_stats() {
        let base = std::env::temp_dir().join(format!("paraspace_cli_ens_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let model = base.join("model");
        let mut log = Vec::new();
        execute(
            &Command::Generate { species: 5, reactions: 6, seed: 8, out_dir: model.clone() },
            &mut log,
        )
        .unwrap();
        execute(&ensemble_cmd(&model, None, 2), &mut log).unwrap();
        let out_dir = model.join("ensemble");
        let names: std::collections::BTreeSet<String> = std::fs::read_dir(&out_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.contains("replicate_00000.tsv"));
        assert!(names.contains("replicate_00006.tsv"));
        assert!(names.contains("ensemble_mean.tsv"));
        assert!(names.contains("ensemble_variance.tsv"));
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("7/7 replicates ok"), "log: {text}");

        // SSA takes the scalar path on the same model and also succeeds.
        let mut ssa = ensemble_cmd(&model, None, 1);
        if let Command::Ensemble { simulator, out_dir, .. } = &mut ssa {
            *simulator = "ssa".into();
            *out_dir = Some(base.join("ssa_out"));
        }
        let mut log = Vec::new();
        execute(&ssa, &mut log).unwrap();
        assert!(String::from_utf8(log).unwrap().contains("ssa ensemble: 7/7"));
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn durable_ensemble_resumes_to_identical_artifacts() {
        let base =
            std::env::temp_dir().join(format!("paraspace_cli_ensdur_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let model = base.join("model");
        let mut log = Vec::new();
        execute(
            &Command::Generate { species: 5, reactions: 6, seed: 8, out_dir: model.clone() },
            &mut log,
        )
        .unwrap();
        // Plain run is the byte-level reference.
        execute(&ensemble_cmd(&model, None, 2), &mut log).unwrap();
        let reference = read_outputs(&model.join("ensemble"));
        std::fs::remove_dir_all(model.join("ensemble")).unwrap();

        // Interrupt a durable run before the first shard, then resume with
        // the stored configuration: artifacts must match the plain run.
        let ckpt = base.join("ckpt");
        let tripped = CancelToken::new();
        tripped.cancel();
        let err =
            execute_with_cancel(&ensemble_cmd(&model, Some(ckpt.clone()), 2), &mut log, &tripped)
                .unwrap_err();
        assert!(err.to_string().contains("resume"), "{err}");
        execute(&Command::Resume { checkpoint_dir: ckpt.clone(), workers: 0 }, &mut log).unwrap();
        assert_eq!(reference, read_outputs(&model.join("ensemble")));
        let text = String::from_utf8_lossy(&log).into_owned();
        assert!(text.contains("ensemble (durable)"), "log: {text}");

        // A different seed on the same checkpoint is a different world.
        let mut reseeded = ensemble_cmd(&model, Some(ckpt.clone()), 2);
        if let Command::Ensemble { seed, .. } = &mut reseeded {
            *seed = 12;
        }
        let err = execute(&reseeded, &mut log).unwrap_err();
        assert!(err.to_string().contains("seed"), "mismatch names the field: {err}");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn recommend_prints_engine() {
        let mut log = Vec::new();
        execute(&Command::Recommend { species: 64, reactions: 64, sims: 512 }, &mut log).unwrap();
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("fine-coarse"));
    }
}
