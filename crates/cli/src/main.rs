//! The `paraspace` binary: parse arguments, dispatch, report errors.
//!
//! SIGINT (Ctrl-C) trips a process-global cancellation token instead of
//! killing the process: in-flight batch members drain, a durable run
//! commits its checkpoint and prints the resume command, and the process
//! exits cleanly. A run without `--checkpoint-dir` simply stops at the
//! next batch boundary.

use paraspace_cli::CancelToken;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// The flag the signal handler sets. A handler cannot capture state, so
/// the token's flag is published here before the handler is installed.
static CANCEL_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_sigint(_signum: i32) {
    // Async-signal-safe: relaxed atomic stores/loads and the kill
    // syscall — no allocation, no locks.
    if let Some(flag) = CANCEL_FLAG.get() {
        flag.store(true, Ordering::Relaxed);
    }
    // A coordinator's spawned workers die with it instead of lingering as
    // orphans that keep heartbeating stale leases until the TTL reaps
    // them; their claimed shards free immediately on the next expiry scan.
    paraspace_cli::kill_registered_children();
}

/// Installs `on_sigint` as the SIGINT disposition via the libc `signal`
/// symbol that `std` already links — no extra dependency.
fn install_sigint_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        let handler: extern "C" fn(i32) = on_sigint;
        unsafe {
            signal(SIGINT, handler as *const () as usize);
        }
    }
}

fn main() -> ExitCode {
    let flag = Arc::new(AtomicBool::new(false));
    let _ = CANCEL_FLAG.set(flag.clone());
    install_sigint_handler();
    let cancel = CancelToken::from_flag(flag);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match paraspace_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", paraspace_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout();
    match paraspace_cli::execute_with_cancel(&cmd, &mut stdout, &cancel) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
