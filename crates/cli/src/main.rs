//! The `paraspace` binary: parse arguments, dispatch, report errors.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match paraspace_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", paraspace_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout();
    match paraspace_cli::execute(&cmd, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
