//! `paraspace` — accelerated analysis of biological parameter spaces on a
//! simulated GPU.
//!
//! This umbrella crate re-exports the workspace members; see the README
//! for the architecture overview and DESIGN.md for the system inventory
//! and the experiment index.
//!
//! * [`rbm`] — reaction-based models, mass-action ODE derivation, model
//!   I/O, synthetic model generation;
//! * [`solvers`] — DOPRI5, Radau IIA, RKF45, RK4, and Nordsieck
//!   Adams/BDF multistep (LSODA/VODE baselines);
//! * [`vgpu`] — the simulated SIMT device (the CUDA substitution);
//! * [`engine`] — the batch simulation engines (fine+coarse and its
//!   baselines) with the P1–P5 pipeline;
//! * [`analysis`] — PSA, Sobol SA, PSO/FST-PSO parameter estimation;
//! * [`stochastic`] — SSA and tau-leaping with a coarse-grained batch
//!   engine (the stochastic half of the GPU-simulator landscape);
//! * [`journal`] — crash-safe campaign durability (write-ahead manifest,
//!   append-only shard journal, exact resume);
//! * [`models`] — the evaluation models (classics, autophagy analogue,
//!   metabolic HK-isoform network);
//! * [`linalg`] — the dense real/complex kernels underneath.
//!
//! # Example
//!
//! ```
//! use paraspace::engine::{FineCoarseEngine, SimulationJob, Simulator};
//! use paraspace::rbm::{Reaction, ReactionBasedModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut model = ReactionBasedModel::new();
//! let a = model.add_species("A", 1.0);
//! model.add_reaction(Reaction::mass_action(&[(a, 1)], &[], 0.5))?;
//! let job = SimulationJob::builder(&model).time_points(vec![1.0]).replicate(4).build()?;
//! let result = FineCoarseEngine::new().run(&job)?;
//! assert_eq!(result.success_count(), 4);
//! # Ok(())
//! # }
//! ```

pub use paraspace_analysis as analysis;
pub use paraspace_core as engine;
pub use paraspace_journal as journal;
pub use paraspace_linalg as linalg;
pub use paraspace_models as models;
pub use paraspace_rbm as rbm;
pub use paraspace_solvers as solvers;
pub use paraspace_stochastic as stochastic;
pub use paraspace_vgpu as vgpu;
