//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x this workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range and tuple
//! strategies, [`collection::vec`], [`Strategy::prop_filter`], and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream: generation is driven by a fixed-seed
//! SplitMix64 stream (fully deterministic run to run) and there is **no
//! shrinking** — a failing case panics with the un-shrunk input value.

use std::fmt;

/// Deterministic bit source driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x6C62_272E_07BB_0142 }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A float in `[0, 1)` with 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a generated case was rejected (filter miss) or failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A test-case failure carrying `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for upstream compatibility.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration; only `cases` is meaningful in this shim, the other
/// fields exist so `..ProptestConfig::default()` update syntax compiles.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Upper bound on filter rejections per case before giving up.
    pub max_global_rejects: u32,
    /// Ignored (no shrinking in the shim).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536, max_shrink_iters: 0 }
    }
}

/// A generator of values of an output type.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Rejects generated values for which `pred` is false, retrying with
    /// fresh draws.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), pred }
    }

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 consecutive draws", self.whence);
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Admissible length specifications for [`vec()`](crate::collection::vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// A strategy yielding `Vec`s of `element` draws with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`](crate::collection::vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.index(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs `cases` generated inputs of `strategy` through `body`, panicking on
/// the first failure with the offending input.
pub fn run_property<S, F>(name: &str, config: ProptestConfig, strategy: S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    // Seed from the property name so distinct properties explore distinct
    // streams but every run of the same property is identical.
    let seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3));
    let mut rng = TestRng::new(seed);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        if let Err(e) = body(value) {
            panic!("proptest '{name}' failed at case {case} with input {rendered}: {e}");
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {:?} != {:?} ({} vs {})",
            lhs, rhs, stringify!($lhs), stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, "{}: {:?} != {:?}", format!($($fmt)+), lhs, rhs);
    }};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                $crate::run_property(stringify!($name), config, strategy, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};

    pub mod prop {
        //! The `prop::` module path used by strategy expressions.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuple_patterns_destructure((a, b) in (0usize..5, 10usize..15)) {
            prop_assert!(a < 5 && (10..15).contains(&b));
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn filters_apply(x in (-10i32..10).prop_filter("nonzero", |v| *v != 0)) {
            prop_assert!(x != 0, "x was {}", x);
        }

        #[test]
        fn vec_lengths_respect_size(xs in prop::collection::vec(0.0f64..1.0, 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for x in &xs {
                prop_assert!((0.0..1.0).contains(x));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }
}
