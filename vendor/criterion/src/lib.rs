//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API used by the workspace's
//! benches: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then `sample_size`
//! timed samples of an adaptively chosen iteration count, reporting the
//! per-iteration mean and min to stdout. When the binary is invoked with
//! `--test` (as `cargo test` does for `harness = false` bench targets) the
//! benchmarks run exactly one iteration each, as upstream does.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 100, test_mode }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a free-standing benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = id.to_string();
        run_benchmark(&label, self.sample_size, self.test_mode, &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.criterion.sample_size, self.criterion.test_mode, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.criterion.sample_size, self.criterion.test_mode, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier composed of a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id labelled by the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Hands the routine under measurement to the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    test_mode: bool,
    f: &mut F,
) {
    if test_mode {
        time_once(f, 1);
        println!("test {label} ... ok (bench smoke)");
        return;
    }
    // Warm-up, and pick an iteration count aiming near ~25ms per sample so
    // cheap routines are not swamped by timer noise.
    let warm = time_once(f, 1).max(Duration::from_nanos(1));
    let target = Duration::from_millis(25);
    let iters = (target.as_nanos() / warm.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        let t = time_once(f, iters);
        total += t;
        best = best.min(t);
    }
    let samples = sample_size as u64 * iters;
    let mean_ns = total.as_nanos() as f64 / samples as f64;
    let min_ns = best.as_nanos() as f64 / iters as f64;
    println!("bench {label:<48} mean {} min {}", fmt_ns(mean_ns), fmt_ns(min_ns));
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher { iters: 17, elapsed: Duration::ZERO };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion { sample_size: 2, test_mode: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("two", 42), &42, |b, x| b.iter(|| black_box(*x)));
            g.finish();
        }
        assert!(ran >= 1);
    }
}
