//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small subset of the `rand` 0.8 API it actually
//! uses: [`RngCore`], [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! generator than upstream's ChaCha12, so the *streams* differ from real
//! `rand`, but every consumer in this workspace treats seeded randomness as
//! an arbitrary deterministic source and asserts properties rather than
//! exact draws.

/// A low-level source of uniformly random bits.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// The uniform "whole domain" distribution used by [`Rng::gen`].
pub struct Standard;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value covering `T`'s whole domain (unit interval
    /// for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng` (ChaCha12); all
    /// in-tree consumers only require determinism, not a specific stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `rand::prelude`.
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn unsized_rng_borrows_work() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let x = takes_dynish(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
