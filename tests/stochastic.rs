//! Cross-crate validation: the stochastic engines against deterministic
//! trajectories and analytic noise theory.

use paraspace::engine::{CpuEngine, CpuSolverKind, SimulationJob, Simulator};
use paraspace::rbm::{Reaction, ReactionBasedModel};
use paraspace::stochastic::{DirectMethod, StochasticBatch, TauLeaping};

fn gene_expression(k_tx: f64, g_m: f64, k_tl: f64, g_p: f64) -> ReactionBasedModel {
    let mut m = ReactionBasedModel::new();
    let mrna = m.add_species("mRNA", 0.0);
    let prot = m.add_species("protein", 0.0);
    m.add_reaction(Reaction::mass_action(&[], &[(mrna, 1)], k_tx)).expect("valid");
    m.add_reaction(Reaction::mass_action(&[(mrna, 1)], &[], g_m)).expect("valid");
    m.add_reaction(Reaction::mass_action(&[(mrna, 1)], &[(mrna, 1), (prot, 1)], k_tl))
        .expect("valid");
    m.add_reaction(Reaction::mass_action(&[(prot, 1)], &[], g_p)).expect("valid");
    m
}

/// For linear networks the SSA ensemble mean must follow the ODE solution
/// (first-moment equation is closed).
#[test]
fn ssa_ensemble_mean_tracks_ode() {
    let model = gene_expression(40.0, 2.0, 10.0, 1.0);
    let times = vec![1.0, 2.0, 4.0];
    let job =
        SimulationJob::builder(&model).time_points(times.clone()).replicate(1).build().unwrap();
    let ode = CpuEngine::new(CpuSolverKind::Lsoda).run(&job).unwrap();
    let ode_sol = ode.outcomes[0].solution.as_ref().unwrap();

    let ens =
        StochasticBatch::new(DirectMethod::new()).with_seed(9).run(&model, &times, 300).unwrap();
    for (i, _) in times.iter().enumerate() {
        for s in 0..2 {
            let ode_v = ode_sol.state_at(i)[s];
            let mean = ens.stats.mean[i][s];
            // 3-sigma-ish band for 300 replicates.
            let tol = 4.0 * (ens.stats.variance[i][s] / 300.0).sqrt() + 0.5;
            assert!(
                (mean - ode_v).abs() < tol,
                "species {s} at t index {i}: ensemble {mean} vs ODE {ode_v} (tol {tol})"
            );
        }
    }
}

/// The steady-state protein Fano factor of the two-stage gene-expression
/// model is 1 + k_tl/(γ_m + γ_p) — a classic analytic noise result the
/// deterministic engine cannot see.
#[test]
fn protein_fano_factor_matches_theory() {
    let (k_tx, g_m, k_tl, g_p) = (40.0, 2.0, 10.0, 1.0);
    let model = gene_expression(k_tx, g_m, k_tl, g_p);
    let ens =
        StochasticBatch::new(DirectMethod::new()).with_seed(31).run(&model, &[8.0], 600).unwrap();
    let fano = ens.stats.variance[0][1] / ens.stats.mean[0][1];
    let theory = 1.0 + k_tl / (g_m + g_p);
    assert!((fano - theory).abs() < 0.9, "Fano {fano:.2} vs theory {theory:.2}");
    // And the mRNA itself is Poisson: Fano ≈ 1.
    let fano_m = ens.stats.variance[0][0] / ens.stats.mean[0][0];
    assert!((fano_m - 1.0).abs() < 0.35, "mRNA Fano {fano_m:.2}");
}

/// Tau-leaping reproduces the SSA ensemble mean on a large-population
/// model at a fraction of the event count.
#[test]
fn tau_leaping_matches_ssa_cheaply() {
    let mut m = ReactionBasedModel::new();
    let a = m.add_species("A", 50_000.0);
    let b = m.add_species("B", 0.0);
    m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.5)).expect("valid");
    m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.5)).expect("valid");

    let ssa = StochasticBatch::new(DirectMethod::new()).with_seed(5).run(&m, &[1.0], 8).unwrap();
    let tau = StochasticBatch::new(TauLeaping::new()).with_seed(5).run(&m, &[1.0], 8).unwrap();
    let rel = (ssa.stats.mean[0][0] - tau.stats.mean[0][0]).abs() / ssa.stats.mean[0][0];
    // ε = 0.03 leaping tolerates O(ε) bias; 8 replicates add sampling noise.
    assert!(rel < 0.03, "means differ by {rel:.3}");
    let ssa_steps: u64 = ssa.trajectories().iter().map(|t| t.steps).sum();
    let tau_steps: u64 = tau.trajectories().iter().map(|t| t.steps).sum();
    assert!(tau_steps * 20 < ssa_steps, "tau {tau_steps} steps vs ssa {ssa_steps}");
}
