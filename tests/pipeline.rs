//! End-to-end integration: model I/O → job → engines → trajectories.

use paraspace::engine::{
    CoarseEngine, CpuEngine, CpuSolverKind, FineCoarseEngine, FineEngine, SimulationJob, Simulator,
};
use paraspace::models::classic;
use paraspace::rbm::{biosimware, perturbed_batch, sbgen::SbGen, sbml};
use paraspace::solvers::SolverOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A model written to disk, read back, and simulated must produce the same
/// trajectories as the in-memory original, on every engine.
#[test]
fn disk_roundtrip_preserves_dynamics_across_engines() {
    let mut rng = StdRng::seed_from_u64(77);
    let model = SbGen::new(12, 15).generate(&mut rng);
    let dir = std::env::temp_dir().join(format!("paraspace_it_{}", std::process::id()));
    biosimware::write_dir(&model, &dir).expect("write");
    let restored = biosimware::read_dir(&dir).expect("read");
    std::fs::remove_dir_all(&dir).ok();

    let times = vec![0.5, 1.0];
    let job_a = SimulationJob::builder(&model)
        .time_points(times.clone())
        .replicate(3)
        .build()
        .expect("job");
    let job_b =
        SimulationJob::builder(&restored).time_points(times).replicate(3).build().expect("job");

    let engines: Vec<Box<dyn Simulator>> = vec![
        Box::new(CpuEngine::new(CpuSolverKind::Lsoda)),
        Box::new(CoarseEngine::new()),
        Box::new(FineEngine::new()),
        Box::new(FineCoarseEngine::new()),
    ];
    for engine in &engines {
        let ra = engine.run(&job_a).expect("run a");
        let rb = engine.run(&job_b).expect("run b");
        for (oa, ob) in ra.outcomes.iter().zip(&rb.outcomes) {
            let (sa, sb) =
                (oa.solution.as_ref().expect("member a"), ob.solution.as_ref().expect("member b"));
            for (xa, xb) in sa.last_state().unwrap().iter().zip(sb.last_state().unwrap()) {
                assert!(
                    (xa - xb).abs() <= 1e-9 * xa.abs().max(1e-9),
                    "{}: {xa} vs {xb}",
                    engine.name()
                );
            }
        }
    }
}

/// All four engines produce mutually consistent trajectories on the same
/// job (they share the numerics; they differ only in scheduling).
#[test]
fn engines_agree_on_robertson() {
    let model = classic::robertson();
    let opts = SolverOptions { max_steps: 200_000, ..SolverOptions::default() };
    let job = SimulationJob::builder(&model)
        .time_points(vec![0.4, 4.0])
        .replicate(1)
        .options(opts)
        .build()
        .expect("job");
    let reference = CpuEngine::new(CpuSolverKind::Lsoda).run(&job).expect("cpu");
    let rs = reference.outcomes[0].solution.as_ref().expect("cpu sol");
    let others: Vec<Box<dyn Simulator>> = vec![
        Box::new(FineCoarseEngine::new()),
        Box::new(CoarseEngine::new()),
        Box::new(FineEngine::new()),
        Box::new(CpuEngine::new(CpuSolverKind::Vode)),
    ];
    for engine in &others {
        let r = engine.run(&job).expect("run");
        let s = r.outcomes[0].solution.as_ref().expect("sol");
        for i in 0..2 {
            for (a, b) in s.state_at(i).iter().zip(rs.state_at(i)) {
                assert!(
                    (a - b).abs() < 2e-4,
                    "{} deviates at sample {i}: {a} vs {b}",
                    engine.name()
                );
            }
        }
    }
}

/// SBML exported from a model and re-imported simulates identically.
#[test]
fn sbml_roundtrip_preserves_dynamics() {
    let mut rng = StdRng::seed_from_u64(4);
    let model = SbGen::new(8, 10).generate(&mut rng);
    let reimported = sbml::from_str(&sbml::to_string(&model)).expect("sbml");
    let times = vec![1.0];
    let engine = CpuEngine::new(CpuSolverKind::Lsoda);
    let job1 = SimulationJob::builder(&model)
        .time_points(times.clone())
        .replicate(1)
        .build()
        .expect("job");
    let job2 =
        SimulationJob::builder(&reimported).time_points(times).replicate(1).build().expect("job");
    let s1 = engine.run(&job1).expect("r1").outcomes.remove(0).solution.expect("s1");
    let s2 = engine.run(&job2).expect("r2").outcomes.remove(0).solution.expect("s2");
    for (a, b) in s1.state_at(0).iter().zip(s2.state_at(0)) {
        assert!((a - b).abs() < 1e-10 * a.abs().max(1e-10));
    }
}

/// The phase pipeline splits a mixed batch correctly: non-stiff members on
/// DOPRI5, stiff members on RADAU5, all trajectories correct.
#[test]
fn mixed_batch_routing() {
    use paraspace::rbm::{Parameterization, Reaction, ReactionBasedModel};
    let mut m = ReactionBasedModel::new();
    let a = m.add_species("A", 1.0);
    let b = m.add_species("B", 0.0);
    m.add_reaction(Reaction::mass_action(&[(a, 1)], &[(b, 1)], 1.0)).expect("r");
    m.add_reaction(Reaction::mass_action(&[(b, 1)], &[(a, 1)], 0.5)).expect("r");
    let rates: Vec<f64> = vec![0.1, 1.0, 1e3, 1e5];
    let batch: Vec<Parameterization> = rates
        .iter()
        .map(|&k| Parameterization::new().with_rate_constants(vec![k, k * 0.5]))
        .collect();
    let job = SimulationJob::builder(&m)
        .time_points(vec![2.0])
        .parameterizations(batch)
        .build()
        .expect("job");
    let r = FineCoarseEngine::new().run(&job).expect("run");
    assert_eq!(r.success_count(), 4);
    assert!(!r.outcomes[0].stiff && !r.outcomes[1].stiff);
    assert!(r.outcomes[3].stiff);
    // Two members classify stiff, so P4 runs them as a lockstep Radau
    // lane group rather than scalar solves.
    assert_eq!(r.outcomes[3].solver, "radau5-lanes");
    // Equilibrium A/(A+B): k_back/(k_fwd + k_back) = 1/3 for every member.
    for o in &r.outcomes {
        let s = o.solution.as_ref().expect("sol");
        let total: f64 = s.state_at(0).iter().sum();
        assert!((total - 1.0).abs() < 1e-5, "mass conservation");
    }
    // The fast members are already at equilibrium by t = 2.
    let eq = r.outcomes[3].solution.as_ref().unwrap().state_at(0)[0];
    assert!((eq - 1.0 / 3.0).abs() < 1e-3, "equilibrium {eq}");
}

/// Batch of perturbed parameterizations: per-member results differ but all
/// stay within physical bounds.
#[test]
fn perturbed_batch_members_vary_but_stay_physical() {
    let mut rng = StdRng::seed_from_u64(21);
    let model = SbGen::new(10, 10).generate(&mut rng);
    let batch = perturbed_batch(&model, 16, &mut rng);
    let job = SimulationJob::builder(&model)
        .time_points(vec![1.0])
        .parameterizations(batch)
        .build()
        .expect("job");
    let r = FineCoarseEngine::new().run(&job).expect("run");
    let finals: Vec<Vec<f64>> = r.solutions().map(|s| s.state_at(0).to_vec()).collect();
    assert!(finals.len() >= 14, "almost all members should integrate");
    // A single component can sit at a shared equilibrium (or be disconnected
    // in the generated network), so look for variation anywhere in the state.
    let distinct = finals
        .iter()
        .filter(|f| f.iter().zip(&finals[0]).any(|(x, y)| (x - y).abs() > 1e-12))
        .count();
    assert!(distinct > 0, "perturbed members must differ");
    for s in r.solutions() {
        for &x in s.state_at(0) {
            assert!(x >= -1e-6, "concentrations must stay non-negative-ish: {x}");
            assert!(x.is_finite());
        }
    }
}
