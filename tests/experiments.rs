//! Scaled-down versions of the evaluation's headline claims, asserted as
//! integration tests so the reproduction's *shape* is continuously
//! checked (the bench binaries print the full tables).
//!
//! These tests execute thousands of real integrations, so they are gated
//! to optimized builds: run them with `cargo test --release --test
//! experiments` (plain debug `cargo test` marks them ignored).

use paraspace::analysis::oscillation;
use paraspace::analysis::psa::{Axis, Psa2d};
use paraspace::analysis::sobol::SaltelliPlan;
use paraspace::analysis::throughput::{hours_ns, simulations_within_budget};
use paraspace::engine::{
    CoarseEngine, CpuEngine, CpuSolverKind, FineCoarseEngine, FineEngine, SimulationJob, Simulator,
};
use paraspace::models::{autophagy, metabolic};
use paraspace::rbm::{perturbed_batch, sbgen::SbGen, Parameterization};
use paraspace::solvers::SolverOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn timings(
    model: &paraspace::rbm::ReactionBasedModel,
    sims: usize,
    seed: u64,
) -> Vec<(&'static str, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let batch = perturbed_batch(model, sims, &mut rng);
    let opts = SolverOptions { max_steps: 100_000, ..SolverOptions::default() };
    let engines: Vec<Box<dyn Simulator>> = vec![
        Box::new(CpuEngine::new(CpuSolverKind::Lsoda)),
        Box::new(CoarseEngine::new()),
        Box::new(FineEngine::new()),
        Box::new(FineCoarseEngine::new()),
    ];
    engines
        .iter()
        .map(|e| {
            let job = SimulationJob::builder(model)
                .time_points(vec![0.5, 1.0])
                .parameterizations(batch.clone())
                .options(opts.clone())
                .build()
                .expect("job");
            (e.name(), e.run(&job).expect("run").timing.simulated_total_ns)
        })
        .collect()
}

fn winner(cell: &[(&'static str, f64)]) -> &'static str {
    cell.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0
}

/// E1 shape: CPU wins single simulations of small models; the fine+coarse
/// engine wins large batches.
#[test]
#[cfg_attr(debug_assertions, ignore = "shape tests run in release builds: cargo test --release")]
fn comparison_map_shape() {
    let mut rng = StdRng::seed_from_u64(1);
    let small = SbGen::new(12, 12).generate(&mut rng);
    let single = timings(&small, 1, 2);
    assert_eq!(winner(&single), "lsoda-cpu", "single small sim: {single:?}");

    let batch = timings(&small, 256, 3);
    let w = winner(&batch);
    assert!(w == "fine-coarse" || w == "coarse", "large batches belong to a GPU engine: {batch:?}");
    // And the fine+coarse engine must beat the CPU outright there.
    let cpu = batch.iter().find(|c| c.0 == "lsoda-cpu").unwrap().1;
    let fc = batch.iter().find(|c| c.0 == "fine-coarse").unwrap().1;
    assert!(fc < cpu / 3.0, "expected a clear GPU win: cpu {cpu}, fc {fc}");
}

/// E2/E3 shape: the fine-grained baseline loses badly on many-simulation
/// batches (serialization), and the coarse baseline loses its edge on
/// models that overflow on-chip memory.
#[test]
#[cfg_attr(debug_assertions, ignore = "shape tests run in release builds: cargo test --release")]
fn asymmetric_engine_weaknesses() {
    let mut rng = StdRng::seed_from_u64(9);
    let model = SbGen::new(24, 24).generate(&mut rng);
    let cell = timings(&model, 64, 10);
    let fine = cell.iter().find(|c| c.0 == "fine").unwrap().1;
    let fc = cell.iter().find(|c| c.0 == "fine-coarse").unwrap().1;
    assert!(fine > 5.0 * fc, "fine-only must serialize badly on batches: {cell:?}");
}

/// E4 shape: the PSA-2D plane splits into oscillating and quiescent
/// regions matching the analytic Hopf boundary.
#[test]
#[cfg_attr(debug_assertions, ignore = "shape tests run in release builds: cargo test --release")]
fn psa_plane_matches_hopf_boundary() {
    let scale = 0.04;
    let model = autophagy::scaled_model(1e3, 1e-7, scale);
    let sweep =
        Psa2d::new(Axis::linear("ampk", 0.0, 1e4, 4), Axis::logarithmic("p9", 1e-9, 1e-6, 4))
            .options(SolverOptions { max_steps: 100_000, ..SolverOptions::default() });
    let times: Vec<f64> = (1..=100).map(|i| 20.0 + i as f64 * 0.5).collect();
    let engine = FineCoarseEngine::new();
    let readout = model.species_by_name(autophagy::AMBRA_SPECIES).unwrap().index();
    let result = sweep
        .run(
            &model,
            |ampk0, p9| {
                let m = autophagy::scaled_model(ampk0, p9, scale);
                Parameterization::new()
                    .with_initial_state(m.initial_state())
                    .with_rate_constants(m.rate_constants())
            },
            times,
            &engine,
            |sol| oscillation::amplitude(&sol.component(readout)),
        )
        .expect("sweep");
    let mut agree = 0;
    let mut total = 0;
    for (i, &a0) in result.axis1.values().iter().enumerate() {
        for (j, &p9) in result.axis2.values().iter().enumerate() {
            total += 1;
            if autophagy::oscillates(a0, p9) == (result.value(i, j) > 1e-2) {
                agree += 1;
            }
        }
    }
    assert!(agree * 100 >= total * 80, "Hopf-boundary agreement too low: {agree}/{total}");
    // Both phases must actually occur in the plane.
    assert!(result.fraction_above(1e-2) > 0.1);
    assert!(result.fraction_above(1e-2) < 0.9);
}

/// E5 shape: the four dead-end HK complexes carry higher total-order
/// sensitivity than the seven catalytic-cycle species.
#[test]
#[cfg_attr(debug_assertions, ignore = "shape tests run in release builds: cargo test --release")]
fn sobol_dead_end_dominance() {
    let model = metabolic::model();
    let plan = SaltelliPlan::new(11, 24);
    let points = plan.scaled(&[metabolic::HK_SAMPLING_RANGE; 11]);
    let r5p = model.species_by_name(metabolic::OUTPUT_SPECIES).unwrap().index();
    let opts = SolverOptions { max_steps: 200_000, ..SolverOptions::default() };
    let engine = FineCoarseEngine::new();
    let mut outputs = Vec::with_capacity(points.len());
    for chunk in points.chunks(192) {
        let batch: Vec<Parameterization> = chunk
            .iter()
            .map(|hk| {
                Parameterization::new()
                    .with_initial_state(metabolic::initial_state_with_hk(&model, hk))
            })
            .collect();
        let job = SimulationJob::builder(&model)
            .time_points(vec![metabolic::TIME_WINDOW_HOURS])
            .parameterizations(batch)
            .options(opts.clone())
            .build()
            .expect("job");
        for o in engine.run(&job).expect("run").outcomes {
            outputs.push(o.solution.map(|s| s.state_at(0)[r5p]).unwrap_or(f64::NAN));
        }
    }
    let mean = outputs.iter().cloned().filter(|v| v.is_finite()).sum::<f64>()
        / outputs.iter().filter(|v| v.is_finite()).count().max(1) as f64;
    for v in &mut outputs {
        if !v.is_finite() {
            *v = mean;
        }
    }
    let mut rng = StdRng::seed_from_u64(5);
    let idx = plan.analyze(&outputs, 50, 0.95, &mut rng);
    let dead_end_mean = [7, 8, 9, 10].iter().map(|&i| idx[i].st).sum::<f64>() / 4.0;
    let cycle_mean = (0..7).map(|i| idx[i].st).sum::<f64>() / 7.0;
    assert!(
        dead_end_mean > cycle_mean,
        "dead-end ST {dead_end_mean:.3} must exceed cycle ST {cycle_mean:.3}"
    );
}

/// E4/E6 shape: within the same simulated budget the fine+coarse engine
/// completes far more simulations than the CPU baselines — on the
/// *published-scale* network (173 species, 6581 reactions); on tiny
/// models the CPU legitimately wins, as the comparison maps show.
#[test]
#[cfg_attr(debug_assertions, ignore = "shape tests run in release builds: cargo test --release")]
fn budget_throughput_ordering() {
    let model = autophagy::model(1e3, 1e-7);
    let times: Vec<f64> = (1..=10).map(|i| i as f64).collect();
    let budget = hours_ns(1.0);
    let run = |engine: &dyn Simulator| {
        simulations_within_budget(
            &model,
            |_| Parameterization::new(),
            times.clone(),
            engine,
            64,
            budget,
        )
        .expect("probe")
        .simulations_in_budget
    };
    let fc = run(&FineCoarseEngine::new());
    let lsoda = run(&CpuEngine::new(CpuSolverKind::Lsoda));
    let vode = run(&CpuEngine::new(CpuSolverKind::Vode));
    assert!(fc > 5 * lsoda, "fine-coarse {fc} vs lsoda {lsoda}");
    assert!(fc > 5 * vode, "fine-coarse {fc} vs vode {vode}");
}

/// A1 shape: per-simulation cost stops improving once the batch exceeds
/// the dynamic-parallelism saturation point.
#[test]
#[cfg_attr(debug_assertions, ignore = "shape tests run in release builds: cargo test --release")]
fn dp_saturation_caps_batch_scaling() {
    let mut rng = StdRng::seed_from_u64(31);
    let model = SbGen::new(16, 16).generate(&mut rng);
    let opts = SolverOptions { max_steps: 100_000, ..SolverOptions::default() };
    let per_sim = |sims: usize| {
        let batch = perturbed_batch(&model, sims, &mut StdRng::seed_from_u64(32));
        let job = SimulationJob::builder(&model)
            .time_points(vec![1.0])
            .parameterizations(batch)
            .options(opts.clone())
            .build()
            .expect("job");
        FineCoarseEngine::new().run(&job).expect("run").timing.simulated_total_ns / sims as f64
    };
    let at_256 = per_sim(256);
    let at_512 = per_sim(512);
    let at_4096 = per_sim(4096);
    assert!(at_512 < at_256 * 1.05, "512 should be at least as good as 256");
    assert!(
        at_4096 > at_512 * 1.2,
        "past the DP knee the per-simulation cost must degrade: {at_4096} vs {at_512}"
    );
}
