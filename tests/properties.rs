//! Property-based tests over randomly generated models and solver inputs.

use paraspace::engine::{CpuEngine, CpuSolverKind, FineCoarseEngine, SimulationJob, Simulator};
use paraspace::linalg::{finite_difference_jacobian, LuFactor, Matrix};
use paraspace::rbm::{biosimware, perturb_constants, sbgen::SbGen, sbml};
use paraspace::solvers::{Dopri5, FnSystem, OdeSolver, Radau5, SolverOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Every generated model compiles, and its analytic Jacobian matches
    /// finite differences at a random positive state.
    #[test]
    fn analytic_jacobian_matches_fd(seed in 0u64..500, n in 2usize..14, m in 2usize..18) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = SbGen::new(n, m).generate(&mut rng);
        let odes = model.compile().expect("compile");
        let x: Vec<f64> = (0..n).map(|i| 0.1 + 0.05 * (i as f64 + seed as f64 % 7.0)).collect();
        let mut jac = Matrix::zeros(n, n);
        odes.jacobian(0.0, &x, &mut jac);
        let fd = finite_difference_jacobian(|t, y, d| odes.rhs(t, y, d), 0.0, &x);
        for i in 0..n {
            for j in 0..n {
                let scale = jac[(i, j)].abs().max(1.0);
                prop_assert!(
                    (jac[(i, j)] - fd[(i, j)]).abs() < 1e-4 * scale,
                    "J[{}][{}] {} vs {}", i, j, jac[(i, j)], fd[(i, j)]
                );
            }
        }
    }

    /// BioSimWare and SBML round trips preserve the model exactly enough
    /// to reproduce identical right-hand sides.
    #[test]
    fn io_roundtrips_preserve_rhs(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = SbGen::new(6, 8).generate(&mut rng);
        let dir = std::env::temp_dir().join(format!("paraspace_prop_{}_{}", std::process::id(), seed));
        biosimware::write_dir(&model, &dir).expect("write");
        let from_disk = biosimware::read_dir(&dir).expect("read");
        std::fs::remove_dir_all(&dir).ok();
        let from_sbml = sbml::from_str(&sbml::to_string(&model)).expect("sbml");

        let x: Vec<f64> = (0..6).map(|i| 0.2 + i as f64 * 0.1).collect();
        let mut d0 = vec![0.0; 6];
        let mut d1 = vec![0.0; 6];
        let mut d2 = vec![0.0; 6];
        model.compile().unwrap().rhs(0.0, &x, &mut d0);
        from_disk.compile().unwrap().rhs(0.0, &x, &mut d1);
        from_sbml.compile().unwrap().rhs(0.0, &x, &mut d2);
        for i in 0..6 {
            prop_assert!((d0[i] - d1[i]).abs() < 1e-10 * d0[i].abs().max(1e-10));
            prop_assert!((d0[i] - d2[i]).abs() < 1e-10 * d0[i].abs().max(1e-10));
        }
    }

    /// The perturbation rule always stays inside its ±25% band and never
    /// flips signs or zeros.
    #[test]
    fn perturbation_band(seed in 0u64..1000, k in prop::collection::vec(1e-9f64..1e3, 1..20)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = perturb_constants(&k, &mut rng);
        for (orig, new) in k.iter().zip(&kp) {
            prop_assert!(*new >= 0.75 * orig && *new < 1.25 * orig);
        }
    }

    /// LU solve actually solves: ‖Ax − b‖ stays tiny for random
    /// well-conditioned systems.
    #[test]
    fn lu_residual_small(seed in 0u64..1000, n in 1usize..20) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 3.0 } else { 0.0 });
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let lu = LuFactor::new(a.clone()).expect("diagonally dominant");
        let x = lu.solve(&b).expect("solve");
        let ax = a.mul_vec(&x);
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    /// Linear decay integrates to the analytic answer for random rates and
    /// horizons, on both the explicit and the implicit solver.
    #[test]
    fn decay_analytic_agreement(k in 0.01f64..50.0, t_end in 0.1f64..5.0) {
        let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| d[0] = -k * y[0]);
        let opts = SolverOptions { max_steps: 200_000, ..SolverOptions::default() };
        let exact = (-k * t_end).exp();
        let a = Dopri5::new().solve(&sys, 0.0, &[1.0], &[t_end], &opts).expect("dopri");
        let b = Radau5::new().solve(&sys, 0.0, &[1.0], &[t_end], &opts).expect("radau");
        prop_assert!((a.state_at(0)[0] - exact).abs() < 1e-5, "dopri {}", a.state_at(0)[0]);
        prop_assert!((b.state_at(0)[0] - exact).abs() < 1e-4, "radau {}", b.state_at(0)[0]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// The GPU engine and the CPU engine produce matching trajectories on
    /// arbitrary generated models (shared numerics, different scheduling).
    #[test]
    fn engines_agree_on_random_models(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = SbGen::new(8, 10).generate(&mut rng);
        let opts = SolverOptions { max_steps: 100_000, ..SolverOptions::default() };
        let job = SimulationJob::builder(&model)
            .time_points(vec![0.5, 1.5])
            .replicate(2)
            .options(opts)
            .build()
            .expect("job");
        let a = FineCoarseEngine::new().run(&job).expect("gpu");
        let b = CpuEngine::new(CpuSolverKind::Lsoda).run(&job).expect("cpu");
        for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
            if let (Ok(sa), Ok(sb)) = (&oa.solution, &ob.solution) {
                for (x, y) in sa.last_state().unwrap().iter().zip(sb.last_state().unwrap()) {
                    prop_assert!(
                        (x - y).abs() < 1e-3 * x.abs().max(1e-3),
                        "seed {}: {} vs {}", seed, x, y
                    );
                }
            }
        }
    }
}
